"""Span-based tracing with serializable context and fork propagation.

A :class:`Tracer` measures named regions of work with
``time.monotonic()`` and emits one ``span`` record per finished region.
Spans nest: a span started while another is open records that span as its
parent, so an episode span contains its training-run parent and a
supervised task span contains whatever the worker did inside it.

Two nesting disciplines coexist:

* **Stacked spans** (the default) — strictly nested, enforced: ending a
  span that is not the innermost open one raises
  :class:`~repro.errors.TelemetryError`.  This is what the simulator and
  training loop use.
* **Detached spans** (``detached=True``) — parented at start but not
  pushed on the stack, for regions that overlap (the supervisor runs many
  isolated-worker task spans concurrently in one scheduler loop).

**Fork propagation** — a :class:`SpanContext` is three strings, so it
serialises to JSON and crosses process boundaries.  The supervisor passes
the task span's context into each forked worker, where
:func:`set_ambient_context` installs it as the *ambient* parent: any
tracer the worker builds then parents its root spans under the
supervisor's task span and continues the same trace id, stitching the
per-process records into one tree.

Span ids embed the emitting PID, so records appended to a shared event
file by forked workers never collide.
"""

from __future__ import annotations

import os
import time
import uuid
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Mapping, Optional

from repro.errors import TelemetryError

_ambient: Optional["SpanContext"] = None


def set_ambient_context(context: Optional["SpanContext"]) -> None:
    """Install ``context`` as this process's ambient trace parent.

    Root spans started afterwards (by any tracer without an explicit
    parent) continue ``context``'s trace and parent under its span.  Pass
    ``None`` to clear.  The supervisor's forked workers call this before
    running the task body.
    """
    global _ambient
    _ambient = context


def ambient_context() -> Optional["SpanContext"]:
    """The ambient trace parent installed in this process (or None)."""
    return _ambient


@dataclass(frozen=True)
class SpanContext:
    """The serialisable identity of one span."""

    trace_id: str
    """Id shared by every span of one traced run."""

    span_id: str
    """Unique id of this span (PID-prefixed, fork-safe)."""

    parent_id: Optional[str] = None
    """Span id of the enclosing span (None for a trace root)."""

    def to_json(self) -> dict:
        """JSON-able form (crosses process boundaries verbatim)."""
        return {"trace_id": self.trace_id, "span_id": self.span_id,
                "parent_id": self.parent_id}

    @classmethod
    def from_json(cls, data: Mapping[str, Any]) -> "SpanContext":
        """Inverse of :meth:`to_json`."""
        trace_id = data.get("trace_id")
        span_id = data.get("span_id")
        parent_id = data.get("parent_id")
        if not isinstance(trace_id, str) or not trace_id \
                or not isinstance(span_id, str) or not span_id \
                or not (parent_id is None or isinstance(parent_id, str)):
            raise TelemetryError(
                f"malformed span context {dict(data)!r}: needs non-empty "
                "trace_id/span_id strings and an optional parent_id")
        return cls(trace_id=trace_id, span_id=span_id, parent_id=parent_id)


class Span:
    """One open (or finished) traced region."""

    __slots__ = ("name", "context", "attributes", "start_monotonic",
                 "start_wall", "duration", "detached", "finished")

    def __init__(self, name: str, context: SpanContext,
                 attributes: Dict[str, Any], detached: bool):
        self.name = name
        self.context = context
        self.attributes = attributes
        self.detached = detached
        self.start_monotonic = time.monotonic()
        self.start_wall = time.time()
        self.duration: Optional[float] = None
        self.finished = False

    def record(self) -> dict:
        """The finished span as a flat JSON-able record."""
        return {"name": self.name,
                "trace_id": self.context.trace_id,
                "span_id": self.context.span_id,
                "parent_id": self.context.parent_id,
                "start_wall": self.start_wall,
                "duration": self.duration,
                "attributes": dict(self.attributes)}


class Tracer:
    """Builds, nests, and emits spans (see the module docstring).

    ``emit`` receives the flat record of every finished span (the
    :class:`repro.telemetry.Telemetry` facade wires it into the event
    sink).  ``trace_id`` pins the trace identity; by default a fresh one
    is generated — unless an ambient context is installed, in which case
    the ambient trace is continued.
    """

    def __init__(self, emit: Optional[Callable[[dict], None]] = None,
                 trace_id: Optional[str] = None):
        self._emit = emit
        self._trace_id = trace_id
        self._stack: List[Span] = []
        self._serial = 0

    @property
    def trace_id(self) -> str:
        """The trace id new root spans are created under."""
        if self._trace_id is None:
            ambient = ambient_context()
            self._trace_id = (ambient.trace_id if ambient is not None
                              else uuid.uuid4().hex[:16])
        return self._trace_id

    def current_context(self) -> Optional[SpanContext]:
        """Context of the innermost open stacked span (or the ambient
        context, or None)."""
        if self._stack:
            return self._stack[-1].context
        return ambient_context()

    def _next_span_id(self) -> str:
        self._serial += 1
        return f"{os.getpid():x}-{self._serial:06x}"

    def start(self, name: str, parent: Optional[SpanContext] = None,
              detached: bool = False, **attributes: Any) -> Span:
        """Open a span; pair with :meth:`end`.

        ``parent`` overrides the implicit parent (innermost stacked span,
        else the ambient context).  ``detached=True`` keeps the span off
        the nesting stack so overlapping regions can be traced from one
        tracer.
        """
        if not name:
            raise TelemetryError("spans need a non-empty name")
        if parent is None:
            parent = self.current_context()
        context = SpanContext(
            trace_id=parent.trace_id if parent is not None else self.trace_id,
            span_id=self._next_span_id(),
            parent_id=parent.span_id if parent is not None else None)
        span = Span(name, context, dict(attributes), detached)
        if not detached:
            self._stack.append(span)
        return span

    def end(self, span: Span, **attributes: Any) -> dict:
        """Close ``span``, merge ``attributes``, emit and return its
        record."""
        if span.finished:
            raise TelemetryError(f"span {span.name!r} was already ended")
        if not span.detached:
            if not self._stack or self._stack[-1] is not span:
                open_name = self._stack[-1].name if self._stack else "none"
                raise TelemetryError(
                    f"unbalanced span end: {span.name!r} is not the "
                    f"innermost open span (innermost: {open_name!r})")
            self._stack.pop()
        span.duration = time.monotonic() - span.start_monotonic
        span.finished = True
        span.attributes.update(attributes)
        record = span.record()
        if self._emit is not None:
            self._emit(record)
        return record

    @contextmanager
    def span(self, name: str, **attributes: Any):
        """Context manager over :meth:`start`/:meth:`end`."""
        span = self.start(name, **attributes)
        try:
            yield span
        finally:
            self.end(span)

    @property
    def depth(self) -> int:
        """Open stacked spans."""
        return len(self._stack)
