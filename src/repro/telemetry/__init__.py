"""Zero-dependency observability: metrics, tracing, structured events.

The telemetry layer makes a run inspectable after the fact from **one
JSONL file**: episode and task spans (:mod:`repro.telemetry.tracing`),
counters/gauges/fixed-bucket histograms
(:mod:`repro.telemetry.metrics`), and schema-validated structured events
(:mod:`repro.telemetry.events`) all stream into a crash-tolerant
append-only sink.  ``repro telemetry report`` (backed by
:mod:`repro.telemetry.report`) aggregates the file into a run summary.

Instrumented layers: the simulator and training loop
(``sim.episode``/``train.run`` spans, sampled ``step`` events,
reward/SoC/shortfall metrics), the supervised executor (per-task spans
propagated across the fork boundary, retry/timeout/quarantine counters),
and the safety supervisor (guard interventions and health-state
transitions as first-class events).

Telemetry is strictly **opt-in**: every instrumented entry point takes
``telemetry=None`` and a disabled run executes the seed code path
bit-identically (see ``docs/OBSERVABILITY.md`` for the schema, metric
names, and overhead budget).

Quickstart::

    from repro import quick_agent
    from repro.sim import train
    from repro.telemetry import Telemetry

    with Telemetry("run.jsonl") as tel:
        controller, simulator = quick_agent()
        simulator.telemetry = tel          # or Simulator(solver, telemetry=tel)
        train(simulator, controller, cycle, episodes=20)
    # then: python -m repro telemetry report run.jsonl
"""

from repro.telemetry.events import (
    EVENT_SCHEMAS,
    SCHEMA_VERSION,
    EventSink,
    read_events,
    register_event_type,
    validate_event,
)
from repro.telemetry.logging_bridge import (
    TelemetryLogHandler,
    attach_logging_bridge,
    detach_logging_bridge,
)
from repro.telemetry.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    exponential_buckets,
    linear_buckets,
)
from repro.telemetry.report import (
    summarize,
    summarize_events,
    summarize_manifest,
)
from repro.telemetry.runtime import Telemetry
from repro.telemetry.tracing import (
    Span,
    SpanContext,
    Tracer,
    ambient_context,
    set_ambient_context,
)

__all__ = [
    "EVENT_SCHEMAS",
    "SCHEMA_VERSION",
    "EventSink",
    "read_events",
    "register_event_type",
    "validate_event",
    "TelemetryLogHandler",
    "attach_logging_bridge",
    "detach_logging_bridge",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "exponential_buckets",
    "linear_buckets",
    "summarize",
    "summarize_events",
    "summarize_manifest",
    "Telemetry",
    "Span",
    "SpanContext",
    "Tracer",
    "ambient_context",
    "set_ambient_context",
]
