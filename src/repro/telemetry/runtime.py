"""The :class:`Telemetry` facade: one object per instrumented run.

Bundles the three observability primitives behind a single opt-in handle:

* a :class:`~repro.telemetry.events.EventSink` (the JSONL stream),
* a :class:`~repro.telemetry.metrics.MetricsRegistry` (counters, gauges,
  histograms — snapshotted into the sink on close), and
* a :class:`~repro.telemetry.tracing.Tracer` whose finished spans are
  emitted into the sink as ``span`` events.

Telemetry is **opt-in with a no-op fast path**: every instrumented call
site takes ``telemetry=None`` and guards with a single ``is not None``
branch, so a disabled run executes exactly the seed code path — episode
results stay bit-identical and the throughput trajectory holds (see
``benchmarks/bench_telemetry_overhead.py`` and ``docs/OBSERVABILITY.md``
for the overhead budget).
"""

from __future__ import annotations

from pathlib import Path
from typing import Any, Optional, Union

from repro.errors import TelemetryError
from repro.telemetry.events import EventSink
from repro.telemetry.metrics import MetricsRegistry
from repro.telemetry.tracing import Tracer

STEP_SAMPLE_EVERY = 50
"""Default sampling period of per-step simulator events (1 = every
step; the default keeps a full UDDS episode under ~30 step events)."""


class Telemetry:
    """One run's event sink + metrics registry + tracer (see module doc)."""

    def __init__(self, path: Union[str, Path],
                 run_id: Optional[str] = None,
                 step_sample_every: int = STEP_SAMPLE_EVERY,
                 append: bool = False):
        if step_sample_every < 1:
            raise TelemetryError("step_sample_every must be >= 1")
        self.sink = EventSink(path, run_id=run_id, append=append)
        self.metrics = MetricsRegistry()
        self.tracer = Tracer(emit=self._emit_span)
        self.step_sample_every = int(step_sample_every)

    # -- plumbing ----------------------------------------------------------

    def _emit_span(self, record: dict) -> None:
        self.sink.emit("span", **record)

    @property
    def path(self) -> Path:
        """The event file being written."""
        return self.sink.path

    @property
    def run_id(self) -> str:
        """The run id stamped into the header."""
        return self.sink.run_id

    # -- convenience -------------------------------------------------------

    def event(self, type_: str, **fields: Any) -> dict:
        """Emit one validated event (see
        :data:`repro.telemetry.events.EVENT_SCHEMAS`)."""
        return self.sink.emit(type_, **fields)

    def span(self, name: str, **attributes: Any):
        """Context-managed stacked span."""
        return self.tracer.span(name, **attributes)

    def close(self) -> None:
        """Snapshot the metrics into the sink and close it (idempotent)."""
        if self.sink.closed:
            return
        if len(self.metrics):
            self.sink.emit("metrics_snapshot",
                           metrics=self.metrics.snapshot())
        self.sink.close()

    def __enter__(self) -> "Telemetry":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()
