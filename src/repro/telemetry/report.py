"""Aggregate a telemetry event file (or sweep manifest) into a run summary.

This is the read side of the observability layer — the ``repro telemetry
report`` subcommand.  Two input kinds are recognised by their header
line:

* a **telemetry event file** (header ``type == "telemetry"``) — the
  summary covers spans by name (count + p50/p99 duration), episodes,
  guard interventions, health transitions, supervised task outcomes
  (attempts, retries, latency), bridged log records, and the final
  metrics snapshot;
* a **sweep manifest** (header ``type == "manifest"``,
  :mod:`repro.exec.manifest`) — the summary covers per-task wall-clock
  latency and attempt counts from the journaled result lines, so
  supervisor latency can be studied from manifests that already exist.
"""

from __future__ import annotations

import json
from collections import Counter as TallyCounter
from collections import defaultdict
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Union

import numpy as np

from repro.errors import TelemetryError
from repro.telemetry.events import read_events


def _percentiles(values: List[float]) -> Dict[str, float]:
    arr = np.asarray(values, dtype=float)
    return {"p50": float(np.percentile(arr, 50)),
            "p99": float(np.percentile(arr, 99)),
            "max": float(arr.max()), "total": float(arr.sum())}


@dataclass
class EventFileSummary:
    """Aggregates of one telemetry event file."""

    path: str
    run_id: str
    events: int = 0
    counts_by_type: Dict[str, int] = field(default_factory=dict)
    span_durations: Dict[str, List[float]] = field(default_factory=dict)
    episodes: int = 0
    episode_steps: int = 0
    episode_rewards: List[float] = field(default_factory=list)
    episode_final_socs: List[float] = field(default_factory=list)
    guard_kinds: Dict[str, int] = field(default_factory=dict)
    transitions: List[dict] = field(default_factory=list)
    task_outcomes: Dict[str, int] = field(default_factory=dict)
    task_attempts: int = 0
    task_retries: int = 0
    task_elapsed: List[float] = field(default_factory=list)
    log_levels: Dict[str, int] = field(default_factory=dict)
    metrics: Optional[dict] = None

    def render(self) -> str:
        """Human-readable run summary."""
        lines = [f"telemetry report: {self.path}",
                 f"run {self.run_id}: {self.events} event(s)",
                 "events by type: " + (", ".join(
                     f"{k}={v}" for k, v in
                     sorted(self.counts_by_type.items())) or "none")]
        if self.span_durations:
            lines.append("")
            lines.append(f"{'span':24s} {'count':>6s} {'total s':>9s} "
                         f"{'p50 ms':>9s} {'p99 ms':>9s}")
            for name in sorted(self.span_durations):
                stats = _percentiles(self.span_durations[name])
                lines.append(
                    f"{name:24s} {len(self.span_durations[name]):6d} "
                    f"{stats['total']:9.3f} {1e3 * stats['p50']:9.2f} "
                    f"{1e3 * stats['p99']:9.2f}")
        if self.episodes:
            lines.append("")
            lines.append(
                f"episodes: {self.episodes} ({self.episode_steps} steps); "
                f"mean reward {np.mean(self.episode_rewards):.2f}, "
                f"mean final SoC {np.mean(self.episode_final_socs):.3f}")
        if self.guard_kinds:
            lines.append("")
            total = sum(self.guard_kinds.values())
            lines.append(f"guard interventions: {total}")
            for kind, count in sorted(self.guard_kinds.items()):
                lines.append(f"  {kind}: {count}")
        if self.transitions:
            lines.append("")
            lines.append(f"health transitions: {len(self.transitions)}")
            for tr in self.transitions:
                lines.append(
                    f"  step {tr['step']:5d} (t={tr['time']:7.1f}s)  "
                    f"{tr['source']} -> {tr['target']}: {tr['reason']}")
        if self.task_outcomes:
            lines.append("")
            done = sum(self.task_outcomes.values())
            outcome_text = ", ".join(
                f"{k}={v}" for k, v in sorted(self.task_outcomes.items()))
            lines.append(
                f"supervised tasks: {done} ({outcome_text}); "
                f"{self.task_attempts} attempt(s), "
                f"{self.task_retries} retried")
            if self.task_elapsed:
                stats = _percentiles(self.task_elapsed)
                lines.append(
                    f"  task latency: p50 {stats['p50']:.3f}s, "
                    f"p99 {stats['p99']:.3f}s, max {stats['max']:.3f}s")
        if self.log_levels:
            lines.append("")
            lines.append("bridged log records: " + ", ".join(
                f"{k}={v}" for k, v in sorted(self.log_levels.items())))
        if self.metrics:
            lines.append("")
            lines.append("final metrics snapshot:")
            for name in sorted(self.metrics):
                snap = self.metrics[name]
                kind = snap.get("kind")
                if kind == "histogram":
                    detail = (f"count={snap['count']}")
                    if snap.get("p50") is not None:
                        detail += (f" p50={snap['p50']:.6g} "
                                   f"p99={snap['p99']:.6g}")
                else:
                    detail = f"{snap.get('value')}"
                lines.append(f"  {name:32s} {kind:9s} {detail}")
        return "\n".join(lines)


def summarize_events(path: Union[str, Path]) -> EventFileSummary:
    """Aggregate one telemetry event file (validates every record)."""
    path = Path(path)
    records = read_events(path)
    header = records[0]
    summary = EventFileSummary(path=str(path),
                               run_id=str(header.get("run_id", "")))
    counts: TallyCounter = TallyCounter()
    spans = defaultdict(list)
    for record in records:
        kind = record["type"]
        counts[kind] += 1
        summary.events += 1
        if kind == "span":
            spans[record["name"]].append(float(record["duration"]))
        elif kind == "episode":
            summary.episodes += 1
            summary.episode_steps += int(record["steps"])
            summary.episode_rewards.append(float(record["total_reward"]))
            summary.episode_final_socs.append(float(record["final_soc"]))
        elif kind == "guard_intervention":
            summary.guard_kinds[record["kind"]] = \
                summary.guard_kinds.get(record["kind"], 0) + 1
        elif kind == "health_transition":
            summary.transitions.append(record)
        elif kind == "task":
            outcome = record["outcome"]
            summary.task_outcomes[outcome] = \
                summary.task_outcomes.get(outcome, 0) + 1
            summary.task_attempts += int(record["attempts"])
            summary.task_retries += max(int(record["attempts"]) - 1, 0)
            summary.task_elapsed.append(float(record["elapsed"]))
        elif kind == "log":
            summary.log_levels[record["level"]] = \
                summary.log_levels.get(record["level"], 0) + 1
        elif kind == "metrics_snapshot":
            summary.metrics = record["metrics"]
    summary.counts_by_type = dict(counts)
    summary.span_durations = dict(spans)
    return summary


@dataclass
class ManifestSummary:
    """Supervisor latency/attempt aggregates of one sweep manifest."""

    path: str
    results: int = 0
    ok: int = 0
    quarantined: int = 0
    attempts: int = 0
    retries: int = 0
    elapsed: List[float] = field(default_factory=list)
    slowest: List[tuple] = field(default_factory=list)

    def render(self) -> str:
        """Human-readable latency summary."""
        lines = [f"manifest report: {self.path}",
                 f"results: {self.results} "
                 f"(ok={self.ok}, quarantined={self.quarantined}); "
                 f"{self.attempts} attempt(s), {self.retries} retried"]
        if self.elapsed:
            stats = _percentiles(self.elapsed)
            lines.append(
                f"task latency: p50 {stats['p50']:.3f}s, "
                f"p99 {stats['p99']:.3f}s, max {stats['max']:.3f}s, "
                f"total {stats['total']:.3f}s")
        if self.slowest:
            lines.append("slowest tasks:")
            for key, elapsed in self.slowest:
                lines.append(f"  {elapsed:8.3f}s  {key}")
        return "\n".join(lines)


def summarize_manifest(path: Union[str, Path],
                       slowest: int = 5) -> ManifestSummary:
    """Aggregate one sweep manifest's per-task latency and attempts.

    Reads the raw JSONL records (payloads are *not* decoded — latency
    analysis must not require the payload classes).  Success lines have
    always journaled ``attempts``/``elapsed``; quarantined lines gained
    top-level copies in manifest v1.1 and older files fall back to the
    fields inside the failure record.
    """
    path = Path(path)
    try:
        lines = path.read_text(encoding="utf-8").splitlines()
    except OSError as exc:
        raise TelemetryError(f"cannot read manifest {path}: {exc}") from exc
    summary = ManifestSummary(path=str(path))
    timed = []
    for index, line in enumerate(lines):
        if not line.strip():
            continue
        try:
            record = json.loads(line)
        except json.JSONDecodeError:
            if index == len(lines) - 1:
                break  # torn final line: same tolerance as resume
            raise TelemetryError(
                f"{path}:{index + 1}: corrupt manifest record")
        if record.get("type") != "result":
            continue
        summary.results += 1
        status = record.get("status")
        if status == "ok":
            summary.ok += 1
        elif status == "quarantined":
            summary.quarantined += 1
        failure = record.get("failure") or {}
        attempts = record.get("attempts", failure.get("attempts"))
        elapsed = record.get("elapsed", failure.get("elapsed"))
        if isinstance(attempts, int):
            summary.attempts += attempts
            summary.retries += max(attempts - 1, 0)
        if isinstance(elapsed, (int, float)) and not isinstance(elapsed,
                                                                bool):
            summary.elapsed.append(float(elapsed))
            timed.append((str(record.get("key", "")), float(elapsed)))
    timed.sort(key=lambda pair: pair[1], reverse=True)
    summary.slowest = timed[:slowest]
    return summary


def summarize(path: Union[str, Path]) -> str:
    """Render the right summary for ``path`` (event file or manifest)."""
    path = Path(path)
    try:
        first = ""
        with path.open("r", encoding="utf-8") as fh:
            for line in fh:
                if line.strip():
                    first = line
                    break
    except OSError as exc:
        raise TelemetryError(f"cannot read {path}: {exc}") from exc
    try:
        header = json.loads(first) if first else {}
    except json.JSONDecodeError as exc:
        raise TelemetryError(
            f"{path}: first line is not JSON ({exc})") from exc
    kind = header.get("type") if isinstance(header, dict) else None
    if kind == "telemetry":
        return summarize_events(path).render()
    if kind == "manifest":
        return summarize_manifest(path).render()
    raise TelemetryError(
        f"{path}: not a telemetry event file or sweep manifest "
        f"(header type {kind!r})")
