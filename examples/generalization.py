"""Generalisation study: trained policy on never-seen stochastic traffic.

The paper motivates RL with the non-stationarity of real driving.  Here we
fit a Markov chain to the UDDS speed profile, train the joint controller on
stochastic trips drawn from that chain, and then evaluate the frozen greedy
policy on *fresh* draws it never saw — plus, as a stress test, on the
HWFET highway cycle whose statistics differ entirely.

Run:  python examples/generalization.py [--training-trips N]
"""

import argparse

import numpy as np

from repro import quick_agent
from repro.control import RuleBasedController
from repro.cycles import fit_chain, generate_trip, standard_cycle
from repro.sim import evaluate


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--training-trips", type=int, default=30)
    args = parser.parse_args()

    chain = fit_chain(standard_cycle("UDDS"))
    controller, simulator = quick_agent(seed=29)
    rule = RuleBasedController(simulator.solver)

    print(f"Training on {args.training_trips} stochastic UDDS-like trips...")
    for k in range(args.training_trips):
        trip = generate_trip(chain, duration=700, seed=1000 + k)
        result = simulator.run_episode(controller, trip, learn=True)
        if (k + 1) % 10 == 0:
            print(f"  trip {k + 1:3d}: fuel {result.total_fuel:6.1f} g  "
                  f"reward {result.total_reward:8.2f}")

    print("\nFrozen greedy policy on unseen draws (vs rule-based):")
    rl_mpg, rule_mpg = [], []
    for k in range(5):
        trip = generate_trip(chain, duration=700, seed=9000 + k)
        rl = evaluate(simulator, controller, trip)
        rb = evaluate(simulator, rule, trip)
        rl_mpg.append(rl.corrected_mpg())
        rule_mpg.append(rb.corrected_mpg())
        print(f"  unseen trip {k}: RL {rl.corrected_mpg():5.1f} mpg  "
              f"rule {rb.corrected_mpg():5.1f} mpg")
    print(f"  mean: RL {np.mean(rl_mpg):5.1f} vs rule {np.mean(rule_mpg):5.1f} "
          f"({100 * (np.mean(rl_mpg) / np.mean(rule_mpg) - 1):+.1f}%)")

    print("\nOut-of-distribution stress test (HWFET highway):")
    hw = standard_cycle("HWFET")
    rl = evaluate(simulator, controller, hw)
    rb = evaluate(simulator, rule, hw)
    print(f"  RL {rl.corrected_mpg():5.1f} mpg vs rule "
          f"{rb.corrected_mpg():5.1f} mpg "
          "(a city-trained policy degrades on the highway, as expected)")


if __name__ == "__main__":
    main()
