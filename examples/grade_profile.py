"""Road grade: the controller on hilly terrain (Eq. 5's F_g term).

Attaches synthetic grade profiles to the SC03 cycle — rolling hills and a
net-zero random loop — and compares the trained controller against the
rule-based baseline on each.  Hills shift energy between climbing (engine
load) and descending (regeneration opportunity), which is where a
supervisory policy earns its keep.

Run:  python examples/grade_profile.py [--episodes N]
"""

import argparse

import numpy as np

from repro import quick_agent
from repro.analysis.traces import energy_account
from repro.control import RuleBasedController
from repro.cycles import standard_cycle
from repro.cycles.grade import elevation_profile, net_zero_terrain, rolling_hills
from repro.sim import evaluate_stationary, train


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--episodes", type=int, default=25)
    args = parser.parse_args()

    base = standard_cycle("SC03")
    variants = {
        "flat": base,
        "rolling hills": rolling_hills(base, amplitude=0.04,
                                       wavelength=700.0),
        "random terrain": net_zero_terrain(base, roughness=0.03, seed=8),
    }

    for label, cycle in variants.items():
        elev = elevation_profile(cycle)
        climb = float(np.sum(np.maximum(np.diff(elev), 0.0)))
        controller, simulator = quick_agent(seed=17)
        doubled = cycle.repeat(2)
        train(simulator, controller, doubled, episodes=args.episodes,
              evaluate_after=False)
        rl = evaluate_stationary(simulator, controller, doubled)
        rule = evaluate_stationary(simulator,
                                   RuleBasedController(simulator.solver),
                                   doubled)
        regen = energy_account(rl).regen_fraction
        print(f"{label:15s} climb {climb:5.1f} m | "
              f"RL {rl.corrected_mpg():5.1f} mpg "
              f"(regen {regen:4.0%}) | rule {rule.corrected_mpg():5.1f} mpg")

    print("\nHills cost fuel on every controller; the learned policy keeps "
          "its edge by\nregenerating on descents and load-levelling climbs.")


if __name__ == "__main__":
    main()
