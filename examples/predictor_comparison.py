"""Compare driving-profile predictors on standard cycles (Section 4.2).

Measures one-step-ahead prediction error of the paper's exponential
weighting function (Eq. 12) against the Markov-chain and MLP alternatives,
over the propulsion-power-demand sequences of several standard cycles.
The punchline matches the paper's design argument: the exponential filter
is competitive with far heavier machinery at a fraction of the cost, and
the RL state only consumes a coarse quantisation of it anyway.

Run:  python examples/predictor_comparison.py
"""

import numpy as np

from repro.cycles import standard_cycle
from repro.powertrain import PowertrainSolver
from repro.prediction import (
    ExponentialPredictor,
    MarkovPredictor,
    MLPPredictor,
    PredictionQuantizer,
)
from repro.vehicle import default_vehicle


def demand_sequence(cycle, solver):
    """Propulsion power demand per step of a cycle, W."""
    return np.array([
        float(solver.dynamics.power_demand(v, a, g))
        for v, a, g in cycle.steps()])


def score(predictor, demands, quantizer):
    """RMSE (kW) and quantised-level accuracy of one predictor."""
    predictor.reset()
    errors, level_hits = [], 0
    for actual in demands:
        predicted = predictor.predict()
        errors.append(predicted - actual)
        if quantizer(predicted) == quantizer(actual):
            level_hits += 1
        predictor.update(actual)
    rmse = float(np.sqrt(np.mean(np.square(errors)))) / 1000.0
    return rmse, level_hits / len(demands)


def main() -> None:
    solver = PowertrainSolver(default_vehicle())
    quantizer = PredictionQuantizer()
    predictors = {
        "exponential (Eq. 12)": ExponentialPredictor(),
        "markov-chain": MarkovPredictor(),
        "mlp (online ANN)": MLPPredictor(),
    }

    for name in ("UDDS", "HWFET", "OSCAR"):
        cycle = standard_cycle(name)
        demands = demand_sequence(cycle, solver)
        print(f"\n{name} ({len(demands)} steps, "
              f"demand range {demands.min() / 1000:.1f} "
              f"to {demands.max() / 1000:.1f} kW):")
        for label, predictor in predictors.items():
            # Two passes: the Markov and MLP predictors learn across
            # episodes, which is how the agent would use them.
            score(predictor, demands, quantizer)
            rmse, acc = score(predictor, demands, quantizer)
            print(f"  {label:22s} rmse={rmse:6.2f} kW   "
                  f"state-level accuracy={100 * acc:5.1f}%")


if __name__ == "__main__":
    main()
