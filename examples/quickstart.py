"""Quickstart: train the joint RL controller and compare it to baselines.

Trains the paper's proposed controller (TD(lambda) with exponential
prediction and joint auxiliary control) on the SC03 air-conditioning cycle,
then evaluates the greedy policy against the rule-based and ECMS baselines.

Run:  python examples/quickstart.py [--episodes N] [--cycle NAME]
"""

import argparse

from repro import quick_agent
from repro.analysis import improvement_percent
from repro.control import ECMSController, RuleBasedController
from repro.cycles import standard_cycle
from repro.sim import evaluate_stationary, train


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--episodes", type=int, default=30,
                        help="training episodes (default 30)")
    parser.add_argument("--cycle", default="SC03",
                        help="standard cycle name (default SC03)")
    args = parser.parse_args()

    cycle = standard_cycle(args.cycle).repeat(2)
    print(f"Cycle: {cycle}")

    controller, simulator = quick_agent()
    print(f"Training the joint RL controller for {args.episodes} episodes...")
    run = train(simulator, controller, cycle, episodes=args.episodes,
                callback=lambda ep, r: print(
                    f"  episode {ep + 1:3d}: reward {r.total_reward:9.2f}  "
                    f"fuel {r.total_fuel:6.1f} g")
                if (ep + 1) % 10 == 0 else None)

    rl = evaluate_stationary(simulator, controller, cycle)
    rule = evaluate_stationary(simulator,
                               RuleBasedController(simulator.solver), cycle)
    ecms = evaluate_stationary(simulator, ECMSController(simulator.solver),
                               cycle)

    print("\nStationary greedy evaluation "
          "(SoC-corrected MPG, cumulative paper reward):")
    for name, res in [("proposed RL", rl), ("rule-based", rule),
                      ("ECMS", ecms)]:
        print(f"  {name:12s} mpg={res.corrected_mpg():6.1f}  "
              f"reward={res.total_paper_reward:9.2f}  "
              f"SoC {res.initial_soc:.2f}->{res.final_soc:.2f}")

    print(f"\nRL vs rule-based MPG improvement: "
          f"{improvement_percent(rl.corrected_mpg(), rule.corrected_mpg()):+.1f}%")


if __name__ == "__main__":
    main()
