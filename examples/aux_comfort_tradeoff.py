"""Sweep the fuel-versus-comfort weighting factor ``w`` (Section 4.3.3).

The joint reward ``(-mdot_f + w * f_aux(p_aux)) * dT`` couples fuel economy
to auxiliary comfort through ``w``.  This example trains the controller at
several values of ``w`` on the SC03 air-conditioning cycle (the EPA cycle
designed for exactly this question) and prints the resulting trade-off
frontier: small ``w`` lets the controller starve the HVAC for fuel, large
``w`` pins the auxiliaries at the driver's preferred power.

Run:  python examples/aux_comfort_tradeoff.py [--episodes N]
"""

import argparse

import numpy as np

from repro.control import build_rl_controller
from repro.cycles import standard_cycle
from repro.powertrain import PowertrainSolver
from repro.rl import RewardConfig
from repro.sim import Simulator, train
from repro.vehicle import default_vehicle


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--episodes", type=int, default=25,
                        help="training episodes per weight (default 25)")
    args = parser.parse_args()

    cycle = standard_cycle("SC03").repeat(2)
    print(f"Cycle: {cycle}")
    print(f"{'w':>6s} {'fuel (g)':>10s} {'mean p_aux (W)':>15s} "
          f"{'mean utility':>13s} {'mpg':>7s}")

    for w in (0.0, 0.05, 0.15, 0.3, 0.6, 1.2):
        solver = PowertrainSolver(default_vehicle())
        simulator = Simulator(solver)
        controller = build_rl_controller(
            solver, reward_config=RewardConfig(aux_weight=w), seed=11)
        run = train(simulator, controller, cycle, episodes=args.episodes)
        res = run.evaluation
        utility = np.mean(np.asarray(
            solver.auxiliary.utility(res.aux_power)))
        print(f"{w:6.2f} {res.corrected_fuel():10.1f} "
              f"{res.mean_aux_power:15.0f} {utility:13.3f} "
              f"{res.corrected_mpg():7.1f}")

    print("\nLarger w pulls the mean auxiliary draw toward the preferred "
          "600 W (utility -> 0)\nand costs fuel; w = 0 abandons comfort "
          "for economy.")


if __name__ == "__main__":
    main()
