"""Custom vehicle: a heavier SUV-class hybrid with a measured fuel map.

Shows the two main extension points of the vehicle substrate:

1. building a :class:`VehicleParams` for a different vehicle class (here a
   ~2.2 t SUV with a bigger engine and pack), and
2. substituting a *tabulated* engine (an ADVISOR-style gridded fuel map,
   round-tripped through CSV as a measured map would be) into the solver.

The RL controller is then trained on the custom vehicle without touching
any controller code — the agent is (partially) model-free, exactly the
paper's selling point.

Run:  python examples/custom_vehicle.py [--episodes N]
"""

import argparse
import tempfile
from pathlib import Path

from repro.control import RuleBasedController, build_rl_controller
from repro.cycles import standard_cycle
from repro.powertrain import PowertrainSolver
from repro.sim import Simulator, evaluate, train
from repro.vehicle import (
    BatteryParams,
    BodyParams,
    EngineParams,
    MotorParams,
    TransmissionParams,
    VehicleParams,
)
from repro.vehicle.engine import Engine
from repro.vehicle.maps import EngineMap, TabulatedEngine


def suv_params() -> VehicleParams:
    """A ~2.2 t SUV-class parallel hybrid."""
    return VehicleParams(
        body=BodyParams(mass=2200.0, drag_coefficient=0.36,
                        frontal_area=2.8, rolling_resistance=0.010,
                        wheel_radius=0.36),
        engine=EngineParams(max_power=130_000.0, max_torque=240.0,
                            idle_fuel_rate=0.22),
        motor=MotorParams(max_power=60_000.0, max_torque=220.0),
        battery=BatteryParams(capacity=10.0 * 3600.0,
                              max_current=120.0),
        transmission=TransmissionParams(
            gear_ratios=(15.2, 9.1, 6.0, 4.4, 3.4)),
    )


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--episodes", type=int, default=25)
    args = parser.parse_args()

    params = suv_params()

    # Tabulate the engine to a gridded map, round-trip it through CSV
    # (standing in for a measured map file), and substitute it.
    engine_map = EngineMap.from_engine(Engine(params.engine),
                                       speed_points=28, torque_points=22)
    with tempfile.TemporaryDirectory() as tmp:
        map_path = Path(tmp) / "suv_engine_map.csv"
        engine_map.to_csv(map_path)
        loaded = EngineMap.from_csv(map_path)
    solver = PowertrainSolver(params, engine=TabulatedEngine(loaded))
    print("SUV hybrid with tabulated engine map "
          f"({len(loaded.speed_grid)}x{len(loaded.torque_grid)} grid)")

    simulator = Simulator(solver)
    cycle = standard_cycle("UDDS").repeat(2)
    controller = build_rl_controller(solver, seed=23)
    print(f"Training on {cycle} for {args.episodes} episodes...")
    run = train(simulator, controller, cycle, episodes=args.episodes)

    rule = evaluate(simulator, RuleBasedController(solver), cycle)
    rl = run.evaluation
    print(f"\n  RL        : mpg={rl.corrected_mpg():5.1f}  "
          f"reward={rl.total_paper_reward:8.2f}")
    print(f"  rule-based: mpg={rule.corrected_mpg():5.1f}  "
          f"reward={rule.total_paper_reward:8.2f}")
    print("\n(An SUV lands in the 30-45 MPG band rather than the compact's "
          "50-60; the\ncontroller adapts to the map with zero code changes.)")


if __name__ == "__main__":
    main()
