"""Commuter scenario: the controller learns one driver's daily route.

The paper motivates RL with the non-stationarity of real driving: a
commuter repeats roughly — but never exactly — the same route.  This
example builds a family of related synthetic commutes (same road, varying
congestion), trains the controller across simulated "days", and shows how
fuel economy improves as the policy adapts, including on congestion levels
it never saw during training.

Run:  python examples/commute_training.py [--days N]
"""

import argparse

import numpy as np

from repro import quick_agent
from repro.cycles import CycleSpec, synthesize
from repro.sim import evaluate


def commute(congestion: float, seed: int):
    """One day's commute: heavier congestion lowers speeds and adds stops."""
    mean = 34.0 - 14.0 * congestion
    stops = 4 + int(8 * congestion)
    return synthesize(CycleSpec(
        name=f"commute(c={congestion:.2f})", duration=900,
        mean_speed_kmh=mean, max_speed_kmh=75.0, stop_count=stops,
        idle_fraction=0.10 + 0.15 * congestion, seed=seed))


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--days", type=int, default=30,
                        help="training days (default 30)")
    args = parser.parse_args()

    controller, simulator = quick_agent(seed=7)
    rng = np.random.default_rng(123)

    print(f"Training across {args.days} commuting days "
          f"(congestion varies day to day)...")
    for day in range(args.days):
        congestion = float(np.clip(rng.beta(2.0, 3.0), 0.0, 1.0))
        cycle = commute(congestion, seed=1000 + day)
        result = simulator.run_episode(controller, cycle, learn=True)
        if (day + 1) % 5 == 0:
            print(f"  day {day + 1:3d} (congestion {congestion:.2f}): "
                  f"fuel {result.total_fuel:6.1f} g, "
                  f"mpg {result.corrected_mpg():5.1f}")

    print("\nGreedy evaluation on three unseen congestion levels:")
    for congestion in (0.1, 0.5, 0.9):
        cycle = commute(congestion, seed=999_000 + int(100 * congestion))
        result = evaluate(simulator, controller, cycle)
        modes = result.mode_fractions()
        ev_share = modes.get(2, 0.0) + modes.get(5, 0.0)
        print(f"  congestion {congestion:.1f}: mpg {result.corrected_mpg():5.1f}, "
              f"reward {result.total_paper_reward:8.2f}, "
              f"electric/regen share {100 * ev_share:4.1f}%, "
              f"SoC -> {result.final_soc:.2f}")


if __name__ == "__main__":
    main()
