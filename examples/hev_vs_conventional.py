"""HEV versus conventional: where does the benefit come from?

The paper's introduction claims HEVs achieve higher fuel economy than
conventional ICE vehicles.  This example drives the same vehicle three
ways — conventionally (no regen, no assist), with the rule-based hybrid
strategy, and with the trained RL joint controller — and decomposes the
gap with the energy-accounting tools: regenerated braking energy, engine
duty, and operating-mode shares.

Run:  python examples/hev_vs_conventional.py [--episodes N]
"""

import argparse

from repro import quick_agent
from repro.analysis.traces import energy_account, engine_duty, mode_share
from repro.control import ConventionalController, RuleBasedController
from repro.cycles import standard_cycle
from repro.sim import evaluate_stationary, train


def describe(label: str, result) -> None:
    account = energy_account(result)
    duty = engine_duty(result)
    shares = mode_share(result)
    ev_like = shares.get("EM_ONLY", 0.0) + shares.get("REGEN", 0.0)
    print(f"\n{label}")
    print(f"  corrected MPG        {result.corrected_mpg():6.1f}")
    print(f"  fuel energy          {account.fuel_energy / 1e6:6.1f} MJ")
    print(f"  regen share          {account.regen_fraction:6.1%}")
    print(f"  engine-on fraction   {duty['on_fraction']:6.1%}")
    print(f"  electric/regen steps {ev_like:6.1%}")


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--episodes", type=int, default=30)
    args = parser.parse_args()

    cycle = standard_cycle("UDDS").repeat(2)
    print(f"Cycle: {cycle}")

    controller, simulator = quick_agent(seed=37)
    solver = simulator.solver
    conventional = evaluate_stationary(
        simulator, ConventionalController(solver), cycle, settle_passes=2)
    rule = evaluate_stationary(
        simulator, RuleBasedController(solver), cycle, settle_passes=2)
    print(f"Training the RL controller for {args.episodes} episodes...")
    train(simulator, controller, cycle, episodes=args.episodes,
          evaluate_after=False)
    rl = evaluate_stationary(simulator, controller, cycle, settle_passes=2)

    describe("conventional (no regen, no assist)", conventional)
    describe("rule-based hybrid", rule)
    describe("RL joint control (proposed)", rl)

    benefit = 100.0 * (rl.corrected_mpg() / conventional.corrected_mpg() - 1)
    print(f"\nTotal hybridisation + control benefit on UDDS: {benefit:+.0f}% MPG")


if __name__ == "__main__":
    main()
