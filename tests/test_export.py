"""Tests of the JSON result export."""

import json

import pytest

from repro.analysis.export import (
    FORMAT_VERSION,
    load_result_dict,
    result_to_dict,
    save_result,
)
from repro.control import RuleBasedController
from repro.cycles import CycleSpec, synthesize
from repro.powertrain import PowertrainSolver
from repro.sim import Simulator, evaluate
from repro.vehicle import default_vehicle


@pytest.fixture(scope="module")
def result():
    solver = PowertrainSolver(default_vehicle())
    cycle = synthesize(CycleSpec("ex", duration=120, mean_speed_kmh=25.0,
                                 max_speed_kmh=50.0, stop_count=2, seed=121))
    return evaluate(Simulator(solver), RuleBasedController(solver), cycle)


class TestResultToDict:
    def test_aggregates_present(self, result):
        doc = result_to_dict(result)
        assert doc["format_version"] == FORMAT_VERSION
        assert doc["fuel_g"] == pytest.approx(result.total_fuel)
        assert doc["corrected_mpg"] == pytest.approx(result.corrected_mpg())
        assert doc["steps"] == len(result.fuel_rate)

    def test_no_traces_by_default(self, result):
        assert "traces" not in result_to_dict(result)

    def test_traces_on_request(self, result):
        doc = result_to_dict(result, include_traces=True)
        assert len(doc["traces"]["soc"]) == len(result.soc)
        assert len(doc["traces"]["gear"]) == len(result.gear)

    def test_json_serialisable(self, result):
        text = json.dumps(result_to_dict(result, include_traces=True))
        assert "fuel_g" in text

    def test_nested_sections_present(self, result):
        doc = result_to_dict(result)
        assert set(doc["energy"]) >= {"fuel_energy_j", "regen_fraction"}
        assert "gear_shifts_per_km" in doc["driveability"]
        assert "throughput_fraction" in doc["soc"]


class TestSaveLoad:
    def test_roundtrip(self, result, tmp_path):
        path = tmp_path / "result.json"
        save_result(result, path)
        doc = load_result_dict(path)
        assert doc["cycle"] == result.cycle_name
        assert doc["fuel_g"] == pytest.approx(result.total_fuel)

    def test_rejects_unknown_version(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({"format_version": 999}))
        with pytest.raises(ValueError):
            load_result_dict(path)
