"""Unit-conversion and constant tests for :mod:`repro.units`."""

import math

import pytest
from hypothesis import given, strategies as st

from repro import units


class TestSpeedConversions:
    def test_kmh_roundtrip(self):
        assert units.ms_to_kmh(units.kmh_to_ms(50.0)) == pytest.approx(50.0)

    def test_mph_roundtrip(self):
        assert units.ms_to_mph(units.mph_to_ms(60.0)) == pytest.approx(60.0)

    def test_100kmh_is_2778ms(self):
        assert units.kmh_to_ms(100.0) == pytest.approx(27.7778, rel=1e-4)

    def test_60mph_is_2682ms(self):
        assert units.mph_to_ms(60.0) == pytest.approx(26.8224, rel=1e-4)

    @given(st.floats(min_value=0.0, max_value=200.0))
    def test_kmh_conversion_monotone(self, v):
        assert units.kmh_to_ms(v) <= units.kmh_to_ms(v + 1.0)


class TestRotationalConversions:
    def test_rpm_roundtrip(self):
        assert units.rads_to_rpm(units.rpm_to_rads(3000.0)) == pytest.approx(3000.0)

    def test_1000rpm(self):
        assert units.rpm_to_rads(1000.0) == pytest.approx(104.72, rel=1e-3)


class TestFuelConversions:
    def test_gallon_of_gasoline_mass(self):
        # One gallon = 3.785 L at 0.745 kg/L = ~2820 g.
        grams = units.GASOLINE_DENSITY * 1000.0 * units.GALLON_IN_LITERS
        assert units.grams_to_gallons(grams) == pytest.approx(1.0)

    def test_mpg_known_value(self):
        # 10 miles on one gallon.
        one_gallon_g = units.GASOLINE_DENSITY * 1000.0 * units.GALLON_IN_LITERS
        assert units.mpg(10 * units.MILE_IN_METERS,
                         one_gallon_g) == pytest.approx(10.0)

    def test_mpg_zero_fuel_is_infinite(self):
        assert math.isinf(units.mpg(1000.0, 0.0))

    def test_liters_per_100km_known_value(self):
        # 7.45 kg of fuel (10 L) over 100 km -> 10 L/100km.
        assert units.liters_per_100km(100_000.0, 7450.0) == pytest.approx(10.0)

    def test_liters_per_100km_rejects_zero_distance(self):
        with pytest.raises(ValueError):
            units.liters_per_100km(0.0, 100.0)

    @given(st.floats(min_value=1.0, max_value=1e6),
           st.floats(min_value=1.0, max_value=1e5))
    def test_mpg_positive(self, dist, fuel):
        assert units.mpg(dist, fuel) > 0.0

    @given(st.floats(min_value=100.0, max_value=1e6),
           st.floats(min_value=1.0, max_value=1e5))
    def test_mpg_and_l_per_100km_inverse_ordering(self, dist, fuel):
        # Higher MPG must mean lower L/100km for the same trip.
        mpg1 = units.mpg(dist, fuel)
        mpg2 = units.mpg(dist, fuel * 2.0)
        l1 = units.liters_per_100km(dist, fuel)
        l2 = units.liters_per_100km(dist, fuel * 2.0)
        assert mpg2 < mpg1
        assert l2 > l1
