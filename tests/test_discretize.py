"""Tests of the RL state discretisation (paper Eq. 13-14)."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.rl.discretize import StateDiscretizer, uniform_edges


class TestUniformEdges:
    def test_eq14_charge_levels(self):
        # Eq. 14: q_min = q_1 < ... < q_N = q_max; interior edges split the
        # window evenly.
        edges = uniform_edges(0.4, 0.8, 4)
        assert np.allclose(edges, [0.5, 0.6, 0.7])

    def test_single_bin_no_edges(self):
        assert len(uniform_edges(0.0, 1.0, 1)) == 0

    def test_rejects_empty_range(self):
        with pytest.raises(ValueError):
            uniform_edges(1.0, 1.0, 3)

    def test_rejects_zero_bins(self):
        with pytest.raises(ValueError):
            uniform_edges(0.0, 1.0, 0)


class TestStateDiscretizer:
    def test_shape_and_count(self):
        d = StateDiscretizer(power_edges=(0.0,), speed_edges=(5.0,),
                             soc_bins=4, prediction_levels=2)
        assert d.shape == (2, 2, 4, 2)
        assert d.num_states == 32

    def test_default_state_count_tractable(self):
        # The paper's convergence argument needs |S||A| coverable in tens of
        # episodes; keep the default well under ~10^3 states.
        d = StateDiscretizer()
        assert d.num_states <= 1500

    def test_state_ids_unique_across_bins(self):
        d = StateDiscretizer(power_edges=(0.0,), speed_edges=(5.0,),
                             soc_bins=2, prediction_levels=2)
        seen = set()
        for p in (-1.0, 1.0):
            for v in (1.0, 10.0):
                for q in (0.45, 0.75):
                    for l in (0, 1):
                        seen.add(d.state_of(p, v, q, l))
        assert len(seen) == 16

    def test_unravel_roundtrip(self):
        d = StateDiscretizer()
        s = d.state_of(5000.0, 12.0, 0.55, 1)
        idx = d.unravel(s)
        assert d.state_of(5000.0, 12.0, 0.55, 1) == int(
            np.ravel_multi_index(idx, d.shape))

    def test_braking_and_driving_in_different_bins(self):
        d = StateDiscretizer()
        assert (d.state_of(-10_000.0, 10.0, 0.6, 0)
                != d.state_of(10_000.0, 10.0, 0.6, 0))

    def test_soc_clipped_to_window(self):
        d = StateDiscretizer(soc_min=0.4, soc_max=0.8, soc_bins=4)
        low = d.indices(0.0, 0.0, 0.1, 0)[2]
        high = d.indices(0.0, 0.0, 0.95, 0)[2]
        assert low == 0
        assert high == 3

    def test_prediction_level_clipped(self):
        d = StateDiscretizer(prediction_levels=3)
        assert d.indices(0.0, 0.0, 0.6, 99)[3] == 2
        assert d.indices(0.0, 0.0, 0.6, -5)[3] == 0

    def test_rejects_unsorted_edges(self):
        with pytest.raises(ValueError):
            StateDiscretizer(power_edges=(5.0, 1.0))

    def test_rejects_bad_window(self):
        with pytest.raises(ValueError):
            StateDiscretizer(soc_min=0.8, soc_max=0.4)

    def test_rejects_zero_prediction_levels(self):
        with pytest.raises(ValueError):
            StateDiscretizer(prediction_levels=0)

    @given(st.floats(min_value=-1e6, max_value=1e6),
           st.floats(min_value=0.0, max_value=60.0),
           st.floats(min_value=0.0, max_value=1.0),
           st.integers(min_value=0, max_value=10))
    def test_every_observation_maps_to_valid_state(self, p, v, q, l):
        d = StateDiscretizer()
        s = d.state_of(p, v, q, l)
        assert 0 <= s < d.num_states
