"""Tests of the tabulated engine maps in :mod:`repro.vehicle.maps`."""

import numpy as np
import pytest

from repro.powertrain import PowertrainSolver
from repro.vehicle import default_vehicle
from repro.vehicle.engine import Engine
from repro.vehicle.maps import EngineMap, TabulatedEngine
from repro.vehicle.params import EngineParams


@pytest.fixture(scope="module")
def engine():
    return Engine(EngineParams())


@pytest.fixture(scope="module")
def engine_map(engine):
    return EngineMap.from_engine(engine, speed_points=30, torque_points=24)


class TestEngineMapValidation:
    def test_rejects_unsorted_grid(self):
        with pytest.raises(ValueError):
            EngineMap(speed_grid=np.array([2.0, 1.0]),
                      torque_grid=np.array([0.0, 1.0]),
                      fuel_rate_grid=np.zeros((2, 2)),
                      max_torque_curve=np.array([1.0, 1.0]),
                      fuel_energy_density=42_500.0)

    def test_rejects_wrong_fuel_shape(self):
        with pytest.raises(ValueError):
            EngineMap(speed_grid=np.array([1.0, 2.0]),
                      torque_grid=np.array([0.0, 1.0]),
                      fuel_rate_grid=np.zeros((3, 2)),
                      max_torque_curve=np.array([1.0, 1.0]),
                      fuel_energy_density=42_500.0)

    def test_rejects_negative_fuel(self):
        with pytest.raises(ValueError):
            EngineMap(speed_grid=np.array([1.0, 2.0]),
                      torque_grid=np.array([0.0, 1.0]),
                      fuel_rate_grid=np.full((2, 2), -1.0),
                      max_torque_curve=np.array([1.0, 1.0]),
                      fuel_energy_density=42_500.0)

    def test_rejects_mismatched_curve(self):
        with pytest.raises(ValueError):
            EngineMap(speed_grid=np.array([1.0, 2.0]),
                      torque_grid=np.array([0.0, 1.0]),
                      fuel_rate_grid=np.zeros((2, 2)),
                      max_torque_curve=np.array([1.0]),
                      fuel_energy_density=42_500.0)


class TestTabulationFidelity:
    def test_interpolation_matches_source_on_grid(self, engine, engine_map):
        # At grid points the tabulated rate equals the parametric model.
        s = engine_map.speed_grid[10]
        t = min(engine_map.torque_grid[8],
                float(engine.max_torque(s)))
        assert float(engine_map.interpolate(t, s)) == pytest.approx(
            float(engine.fuel_rate(t, s)), rel=1e-9)

    def test_interpolation_close_between_grid_points(self, engine,
                                                     engine_map):
        s = 0.5 * (engine_map.speed_grid[10] + engine_map.speed_grid[11])
        t = 35.0
        assert float(engine_map.interpolate(t, s)) == pytest.approx(
            float(engine.fuel_rate(t, s)), rel=0.03)

    def test_max_torque_curve_matches(self, engine, engine_map):
        s = engine_map.speed_grid[5]
        assert float(engine_map.max_torque_at(s)) == pytest.approx(
            float(engine.max_torque(s)), rel=1e-9)


class TestCsvRoundTrip:
    def test_roundtrip_exact(self, engine_map, tmp_path):
        path = tmp_path / "map.csv"
        engine_map.to_csv(path)
        loaded = EngineMap.from_csv(path)
        assert np.allclose(loaded.speed_grid, engine_map.speed_grid)
        assert np.allclose(loaded.fuel_rate_grid, engine_map.fuel_rate_grid,
                           atol=1e-7)
        assert loaded.fuel_energy_density == engine_map.fuel_energy_density

    def test_rejects_non_map_file(self, tmp_path):
        path = tmp_path / "junk.csv"
        path.write_text("a,b\n1,2\n3,4\n5,6\n")
        with pytest.raises(ValueError):
            EngineMap.from_csv(path)


class TestTabulatedEngine:
    def test_same_interface_quantities(self, engine, engine_map):
        tab = TabulatedEngine(engine_map)
        s, t = 250.0, 40.0
        assert float(tab.fuel_rate(t, s)) == pytest.approx(
            float(engine.fuel_rate(t, s)), rel=0.05)
        assert float(tab.max_torque(s)) == pytest.approx(
            float(engine.max_torque(s)), rel=0.02)
        assert bool(tab.is_feasible(t, s))
        assert not bool(tab.is_feasible(-5.0, s))

    def test_fuel_zero_when_off(self, engine_map):
        tab = TabulatedEngine(engine_map)
        assert float(tab.fuel_rate(0.0, 0.0)) == 0.0

    def test_efficiency_in_physical_band(self, engine_map):
        tab = TabulatedEngine(engine_map)
        eta = float(tab.efficiency(60.0, 250.0))
        assert 0.1 < eta < 0.45

    def test_best_operating_torque_efficient(self, engine_map):
        tab = TabulatedEngine(engine_map)
        best = float(tab.best_operating_torque(250.0))
        eta_best = float(tab.efficiency(best, 250.0))
        eta_low = float(tab.efficiency(5.0, 250.0))
        assert eta_best > eta_low

    def test_drop_in_solver_substitution(self, engine_map):
        # The tabulated engine must slot into the powertrain solver and
        # produce near-identical results to the parametric engine.
        params = default_vehicle()
        base = PowertrainSolver(params)
        subst = PowertrainSolver(params, engine=TabulatedEngine(engine_map))
        a = base.evaluate(15.0, 0.3, 0.6, 10.0, 2, 600.0, dt=1.0)
        b = subst.evaluate(15.0, 0.3, 0.6, 10.0, 2, 600.0, dt=1.0)
        assert b.feasible
        assert b.fuel_rate == pytest.approx(a.fuel_rate, rel=0.05)
        assert b.engine_torque == pytest.approx(a.engine_torque, rel=1e-6)
