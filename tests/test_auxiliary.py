"""Tests of the auxiliary-system model and utility function (Sec. 2.1.5)."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.vehicle.auxiliary import (
    AuxiliaryLoad,
    AuxiliarySystem,
    UtilityFunction,
    default_loads,
)
from repro.vehicle.params import AuxiliaryParams


@pytest.fixture
def params():
    return AuxiliaryParams()


@pytest.fixture
def utility(params):
    return UtilityFunction(params)


@pytest.fixture
def system(params):
    return AuxiliarySystem(params)


class TestUtilityFunction:
    def test_peak_at_preferred_power(self, utility, params):
        assert float(utility(params.preferred_power)) == pytest.approx(
            params.utility_peak)

    def test_unimodal(self, utility, params):
        # Strictly decreasing away from the peak on both sides.
        p_star = params.preferred_power
        assert float(utility(p_star - 200)) < float(utility(p_star - 100))
        assert float(utility(p_star + 200)) < float(utility(p_star + 100))

    def test_symmetric(self, utility, params):
        p_star = params.preferred_power
        assert float(utility(p_star - 300)) == pytest.approx(
            float(utility(p_star + 300)))

    def test_default_peak_is_zero(self, utility, params):
        # Reward sign convention: utility <= 0 keeps Table-2-style rewards
        # negative.
        assert params.utility_peak == 0.0
        assert float(utility(params.preferred_power)) == 0.0

    @given(st.floats(min_value=0.0, max_value=3000.0))
    def test_never_exceeds_peak(self, power):
        params = AuxiliaryParams()
        utility = UtilityFunction(params)
        assert float(utility(power)) <= params.utility_peak + 1e-12

    def test_argmax_unconstrained(self, utility, params):
        assert utility.argmax(params.max_power) == pytest.approx(
            params.preferred_power)

    def test_argmax_capped(self, utility, params):
        assert utility.argmax(400.0) == pytest.approx(400.0)

    def test_argmax_rejects_cap_below_floor(self, utility):
        with pytest.raises(ValueError):
            utility.argmax(10.0)

    def test_marginal_sign(self, utility, params):
        assert float(utility.marginal(params.preferred_power - 100)) > 0
        assert float(utility.marginal(params.preferred_power + 100)) < 0
        assert float(utility.marginal(params.preferred_power)) == pytest.approx(0.0)


class TestAuxiliaryLoad:
    def test_rejects_negative_power(self):
        with pytest.raises(ValueError):
            AuxiliaryLoad("bad", -5.0)

    def test_default_loads_reasonable(self):
        loads = default_loads()
        total = sum(l.nominal_power for l in loads)
        assert 1000.0 < total < 2000.0
        assert any(not l.sheddable for l in loads)


class TestAuxiliarySystem:
    def test_min_power_covers_non_sheddable(self, system):
        non_shed = sum(l.nominal_power for l in system.loads
                       if not l.sheddable)
        assert system.min_power >= non_shed

    def test_clamp(self, system):
        assert float(system.clamp(0.0)) == system.min_power
        assert float(system.clamp(1e6)) == system.max_power

    def test_power_levels_span_range(self, system):
        levels = system.power_levels(5)
        assert levels[0] == pytest.approx(system.min_power)
        assert levels[-1] == pytest.approx(system.max_power)
        assert len(levels) == 5

    def test_power_levels_single(self, system):
        levels = system.power_levels(1)
        assert len(levels) == 1

    def test_power_levels_rejects_zero(self, system):
        with pytest.raises(ValueError):
            system.power_levels(0)

    def test_rejects_non_sheddable_overload(self):
        params = AuxiliaryParams(max_power=500.0, preferred_power=400.0)
        loads = (AuxiliaryLoad("monster", 900.0, sheddable=False),)
        with pytest.raises(ValueError):
            AuxiliarySystem(params, loads)

    def test_custom_loads_respected(self, params):
        loads = (AuxiliaryLoad("hvac", 500.0),
                 AuxiliaryLoad("ecu", 150.0, sheddable=False))
        system = AuxiliarySystem(params, loads)
        assert system.min_power == pytest.approx(150.0)
