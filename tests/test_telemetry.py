"""Tests of the observability layer (:mod:`repro.telemetry`).

Covers the acceptance criteria of the telemetry tentpole: histogram
quantile accuracy against ``numpy.percentile``, span nesting and
serialisable context round-trips, JSONL schema validation including the
torn-final-line crash tolerance, the golden guarantee that a
disabled-telemetry run is bit-identical to the seed code path, the
instrumentation of the simulator / training loop / supervised executor /
safety supervisor, and the ``repro telemetry report`` CLI surface.
"""

import json
import logging

import numpy as np
import pytest

from repro.cli import main
from repro.control import RuleBasedController
from repro.control.base import Controller
from repro.control.rl_controller import build_rl_controller
from repro.cycles import CycleSpec, synthesize
from repro.errors import ConfigurationError, TelemetryError
from repro.exec import Supervisor, SweepManifest, Task, TaskFailure
from repro.powertrain import PowertrainSolver
from repro.safety import SafetySupervisor
from repro.sim import Simulator, evaluate, train
from repro.telemetry import (
    Counter,
    EventSink,
    Gauge,
    Histogram,
    MetricsRegistry,
    SpanContext,
    Telemetry,
    Tracer,
    attach_logging_bridge,
    detach_logging_bridge,
    exponential_buckets,
    linear_buckets,
    read_events,
    register_event_type,
    summarize,
    summarize_events,
    summarize_manifest,
    validate_event,
)
from repro.telemetry.tracing import ambient_context, set_ambient_context
from repro.vehicle import default_vehicle


@pytest.fixture(scope="module")
def cycle():
    return synthesize(CycleSpec("tel", duration=90, mean_speed_kmh=25.0,
                                max_speed_kmh=50.0, stop_count=2, seed=3))


@pytest.fixture()
def solver():
    return PowertrainSolver(default_vehicle())


# --------------------------------------------------------------- metrics ---


class TestBuckets:
    def test_linear(self):
        assert linear_buckets(1.0, 0.5, 3) == (1.0, 1.5, 2.0)

    def test_exponential(self):
        assert exponential_buckets(1.0, 2.0, 3) == (1.0, 2.0, 4.0)

    def test_invalid(self):
        with pytest.raises(TelemetryError):
            linear_buckets(0.0, 0.0, 3)
        with pytest.raises(TelemetryError):
            exponential_buckets(0.0, 2.0, 3)


class TestCounterAndGauge:
    def test_counter_accumulates(self):
        c = Counter("c")
        c.inc()
        c.inc(2.5)
        assert c.value == 3.5
        assert c.snapshot() == {"kind": "counter", "value": 3.5}

    def test_counter_rejects_decrease(self):
        with pytest.raises(TelemetryError):
            Counter("c").inc(-1)

    def test_gauge_keeps_last(self):
        g = Gauge("g")
        assert g.value is None
        g.set(1.0)
        g.set(-2.0)
        assert g.value == -2.0


class TestHistogram:
    def test_quantiles_match_numpy_within_bucket_width(self):
        width = 0.5
        rng = np.random.default_rng(0)
        data = rng.uniform(0.0, 10.0, size=500)
        hist = Histogram("h", linear_buckets(width, width, 20))
        for v in data:
            hist.observe(v)
        for q in (0.0, 0.1, 0.5, 0.9, 0.99, 1.0):
            expected = float(np.percentile(data, 100 * q))
            assert abs(hist.quantile(q) - expected) <= width + 1e-9

    def test_extremes_are_exact(self):
        hist = Histogram("h", linear_buckets(1.0, 1.0, 5))
        for v in (0.3, 2.2, 7.7):
            hist.observe(v)
        assert hist.quantile(0.0) == 0.3
        assert hist.quantile(1.0) == 7.7

    def test_empty_is_nan(self):
        assert np.isnan(Histogram("h", (1.0,)).quantile(0.5))

    def test_rejects_nonfinite_and_bad_q(self):
        hist = Histogram("h", (1.0,))
        with pytest.raises(TelemetryError):
            hist.observe(float("nan"))
        with pytest.raises(TelemetryError):
            hist.quantile(1.5)

    def test_rejects_bad_bounds(self):
        with pytest.raises(TelemetryError):
            Histogram("h", ())
        with pytest.raises(TelemetryError):
            Histogram("h", (1.0, 1.0))
        with pytest.raises(TelemetryError):
            Histogram("h", (1.0, float("inf")))

    def test_snapshot_shape(self):
        hist = Histogram("h", (1.0, 2.0))
        hist.observe(0.5)
        snap = hist.snapshot()
        assert snap["kind"] == "histogram"
        assert snap["count"] == 1
        assert snap["min"] == snap["max"] == snap["p50"] == 0.5


class TestMetricsRegistry:
    def test_get_or_create(self):
        reg = MetricsRegistry()
        assert reg.counter("a") is reg.counter("a")
        assert len(reg) == 1

    def test_kind_collision_raises(self):
        reg = MetricsRegistry()
        reg.counter("a")
        with pytest.raises(TelemetryError):
            reg.gauge("a")

    def test_histogram_needs_buckets_first(self):
        reg = MetricsRegistry()
        with pytest.raises(TelemetryError):
            reg.histogram("h")
        reg.histogram("h", buckets=(1.0, 2.0))
        assert reg.histogram("h") is reg.histogram("h", buckets=(1.0, 2.0))
        with pytest.raises(TelemetryError):
            reg.histogram("h", buckets=(1.0, 3.0))

    def test_snapshot_covers_all(self):
        reg = MetricsRegistry()
        reg.counter("z").inc()
        reg.gauge("a").set(1.0)
        assert list(reg.snapshot()) == ["a", "z"]


# --------------------------------------------------------------- tracing ---


class TestTracing:
    def test_nesting_records_parent_chain(self):
        records = []
        tracer = Tracer(emit=records.append)
        outer = tracer.start("outer", layer="sim")
        inner = tracer.start("inner")
        tracer.end(inner)
        tracer.end(outer, outcome="ok")
        assert [r["name"] for r in records] == ["inner", "outer"]
        assert records[0]["parent_id"] == outer.context.span_id
        assert records[1]["parent_id"] is None
        assert records[0]["trace_id"] == records[1]["trace_id"]
        assert records[1]["attributes"] == {"layer": "sim", "outcome": "ok"}
        assert records[0]["duration"] >= 0.0

    def test_unbalanced_end_raises(self):
        tracer = Tracer()
        outer = tracer.start("outer")
        tracer.start("inner")
        with pytest.raises(TelemetryError):
            tracer.end(outer)

    def test_double_end_raises(self):
        tracer = Tracer()
        span = tracer.start("s")
        tracer.end(span)
        with pytest.raises(TelemetryError):
            tracer.end(span)

    def test_detached_spans_overlap(self):
        tracer = Tracer()
        a = tracer.start("a", detached=True)
        b = tracer.start("b", detached=True)
        assert tracer.depth == 0
        tracer.end(a)  # out of start order: fine for detached spans
        tracer.end(b)

    def test_context_round_trip(self):
        ctx = SpanContext("trace", "span", "parent")
        assert SpanContext.from_json(ctx.to_json()) == ctx
        assert SpanContext.from_json(
            json.loads(json.dumps(ctx.to_json()))) == ctx

    def test_malformed_context_raises(self):
        with pytest.raises(TelemetryError):
            SpanContext.from_json({"trace_id": "", "span_id": "s"})

    def test_ambient_context_becomes_parent(self):
        set_ambient_context(SpanContext("trace-x", "span-x"))
        try:
            tracer = Tracer()
            root = tracer.start("root")
            assert root.context.trace_id == "trace-x"
            assert root.context.parent_id == "span-x"
            tracer.end(root)
        finally:
            set_ambient_context(None)
        assert ambient_context() is None

    def test_span_context_manager(self):
        records = []
        tracer = Tracer(emit=records.append)
        with tracer.span("region", k=1):
            pass
        assert records[0]["name"] == "region"


# ---------------------------------------------------------------- events ---


class TestEventSink:
    def test_header_and_round_trip(self, tmp_path):
        path = tmp_path / "e.jsonl"
        with EventSink(path, run_id="r1") as sink:
            sink.emit("step", t=0, speed=1.0, soc=0.6, reward=-1.0,
                      current=0.0)
        records = read_events(path)
        assert [r["type"] for r in records] == ["telemetry", "step"]
        assert records[0]["run_id"] == "r1"
        assert [r["seq"] for r in records] == [0, 1]

    def test_refuses_existing_without_append(self, tmp_path):
        path = tmp_path / "e.jsonl"
        EventSink(path).close()
        with pytest.raises(TelemetryError):
            EventSink(path)

    def test_append_adopts_run_id(self, tmp_path):
        path = tmp_path / "e.jsonl"
        EventSink(path, run_id="orig").close()
        sink = EventSink(path, append=True)
        assert sink.run_id == "orig"
        sink.close()
        assert len(read_events(path)) == 1  # no second header

    def test_append_missing_raises(self, tmp_path):
        with pytest.raises(TelemetryError):
            EventSink(tmp_path / "missing.jsonl", append=True)

    def test_unknown_type_raises(self, tmp_path):
        with EventSink(tmp_path / "e.jsonl") as sink:
            with pytest.raises(TelemetryError):
                sink.emit("nonsense", anything=1)

    def test_missing_field_raises(self, tmp_path):
        with EventSink(tmp_path / "e.jsonl") as sink:
            with pytest.raises(TelemetryError):
                sink.emit("step", t=0, speed=1.0)  # soc/reward/current gone

    def test_bool_is_not_a_number(self, tmp_path):
        with EventSink(tmp_path / "e.jsonl") as sink:
            with pytest.raises(TelemetryError):
                sink.emit("step", t=0, speed=True, soc=0.6, reward=-1.0,
                          current=0.0)

    def test_emit_after_close_raises(self, tmp_path):
        sink = EventSink(tmp_path / "e.jsonl")
        sink.close()
        sink.close()  # idempotent
        with pytest.raises(TelemetryError):
            sink.emit("log", level="WARNING", logger="x", message="m")

    def test_torn_final_line_tolerated_loudly(self, tmp_path):
        path = tmp_path / "e.jsonl"
        with EventSink(path) as sink:
            sink.emit("log", level="WARNING", logger="x", message="m")
        with path.open("a", encoding="utf-8") as fh:
            fh.write('{"type": "log", "lev')  # killed mid-append
        with pytest.warns(RuntimeWarning, match="torn final"):
            records = read_events(path)
        assert len(records) == 2

    def test_mid_file_corruption_raises(self, tmp_path):
        path = tmp_path / "e.jsonl"
        with EventSink(path) as sink:
            sink.emit("log", level="WARNING", logger="x", message="m")
        lines = path.read_text().splitlines()
        lines.insert(1, "not json at all")
        path.write_text("\n".join(lines) + "\n")
        with pytest.raises(TelemetryError, match="corrupt"):
            read_events(path)

    def test_invalid_record_mid_file_raises(self, tmp_path):
        path = tmp_path / "e.jsonl"
        with EventSink(path) as sink:
            sink.emit("log", level="WARNING", logger="x", message="m")
        with path.open("a", encoding="utf-8") as fh:
            fh.write(json.dumps({"type": "step", "v": 1, "seq": 9,
                                 "wall": 0.0, "pid": 1}) + "\n")
        with pytest.raises(TelemetryError, match="missing required field"):
            read_events(path)

    def test_register_event_type(self, tmp_path):
        register_event_type("custom_probe", value=(int, float))
        try:
            with EventSink(tmp_path / "e.jsonl") as sink:
                sink.emit("custom_probe", value=1.5)
            with pytest.raises(TelemetryError):
                register_event_type("custom_probe", other=str)
        finally:
            from repro.telemetry.events import EVENT_SCHEMAS
            EVENT_SCHEMAS.pop("custom_probe", None)

    def test_validate_event_rejects_wrong_version(self):
        with pytest.raises(TelemetryError, match="schema version"):
            validate_event({"type": "log", "v": 99, "seq": 0, "wall": 0.0,
                            "pid": 1, "level": "WARNING", "logger": "x",
                            "message": "m"})


class TestTelemetryFacade:
    def test_close_snapshots_metrics(self, tmp_path):
        path = tmp_path / "t.jsonl"
        with Telemetry(path) as tel:
            tel.metrics.counter("hits").inc(3)
        records = read_events(path)
        assert records[-1]["type"] == "metrics_snapshot"
        assert records[-1]["metrics"]["hits"]["value"] == 3.0

    def test_no_snapshot_without_metrics(self, tmp_path):
        path = tmp_path / "t.jsonl"
        Telemetry(path).close()
        assert [r["type"] for r in read_events(path)] == ["telemetry"]

    def test_spans_flow_into_sink(self, tmp_path):
        path = tmp_path / "t.jsonl"
        with Telemetry(path) as tel:
            with tel.span("work"):
                pass
        assert any(r["type"] == "span" and r["name"] == "work"
                   for r in read_events(path))

    def test_sample_every_validated(self, tmp_path):
        with pytest.raises(TelemetryError):
            Telemetry(tmp_path / "t.jsonl", step_sample_every=0)


# --------------------------------------------------------- logging bridge ---


class TestLoggingBridge:
    def test_warning_records_bridged(self, tmp_path):
        path = tmp_path / "t.jsonl"
        logger = logging.getLogger("repro.test_bridge")
        logger.setLevel(logging.DEBUG)
        with Telemetry(path) as tel:
            handler = attach_logging_bridge(tel, logger)
            logger.warning("the solver %s", "wobbled")
            logger.info("below the bridge level")
            detach_logging_bridge(handler, logger)
            logger.warning("after detach")
        logs = [r for r in read_events(path) if r["type"] == "log"]
        assert len(logs) == 1
        assert logs[0]["message"] == "the solver wobbled"
        assert logs[0]["level"] == "WARNING"


# ------------------------------------------------------ golden determinism ---


class TestGoldenDeterminism:
    def test_enabled_equals_disabled_rule_based(self, solver, cycle,
                                                tmp_path):
        plain = Simulator(solver).run_episode(
            RuleBasedController(solver), cycle, learn=False, greedy=True)
        with Telemetry(tmp_path / "t.jsonl") as tel:
            instrumented = Simulator(solver, telemetry=tel).run_episode(
                RuleBasedController(solver), cycle, learn=False, greedy=True)
        for field in ("soc", "current", "fuel_rate", "reward", "gear",
                      "aux_power", "mode"):
            assert np.array_equal(getattr(plain, field),
                                  getattr(instrumented, field)), field

    def test_enabled_equals_disabled_rl_training(self, cycle, tmp_path):
        def _train(telemetry):
            solver = PowertrainSolver(default_vehicle())
            simulator = Simulator(solver, telemetry=telemetry)
            controller = build_rl_controller(solver, seed=11)
            return train(simulator, controller, cycle, episodes=2, seed=11)

        baseline = _train(None)
        with Telemetry(tmp_path / "t.jsonl") as tel:
            instrumented = _train(tel)
        assert baseline.learning_curve == instrumented.learning_curve
        assert np.array_equal(baseline.evaluation.soc,
                              instrumented.evaluation.soc)
        assert np.array_equal(baseline.evaluation.current,
                              instrumented.evaluation.current)


# ------------------------------------------------------- instrumentation ---


class TestSimulatorInstrumentation:
    def test_episode_events_and_spans(self, solver, cycle, tmp_path):
        path = tmp_path / "t.jsonl"
        with Telemetry(path, step_sample_every=10) as tel:
            simulator = Simulator(solver, telemetry=tel)
            result = evaluate(simulator, RuleBasedController(solver), cycle)
        records = read_events(path)
        spans = [r for r in records if r["type"] == "span"]
        assert [s["name"] for s in spans] == ["sim.episode"]
        assert spans[0]["attributes"]["outcome"] == "ok"
        episodes = [r for r in records if r["type"] == "episode"]
        assert len(episodes) == 1
        assert episodes[0]["steps"] == len(result.soc)
        assert episodes[0]["final_soc"] == pytest.approx(result.final_soc)
        steps = [r for r in records if r["type"] == "step"]
        assert len(steps) == (len(result.soc) + 9) // 10
        snapshot = records[-1]["metrics"]
        assert snapshot["sim.episodes"]["value"] == 1.0
        assert snapshot["sim.step_seconds"]["count"] == len(result.soc)

    def test_training_span_and_episode_events(self, cycle, tmp_path):
        path = tmp_path / "t.jsonl"
        with Telemetry(path) as tel:
            solver = PowertrainSolver(default_vehicle())
            simulator = Simulator(solver, telemetry=tel)
            train(simulator, build_rl_controller(solver, seed=5), cycle,
                  episodes=3)
        records = read_events(path)
        train_spans = [r for r in records
                       if r["type"] == "span" and r["name"] == "train.run"]
        assert len(train_spans) == 1
        assert train_spans[0]["attributes"]["trained"] == 3
        assert train_spans[0]["attributes"]["outcome"] == "ok"
        assert len([r for r in records
                    if r["type"] == "training_episode"]) == 3
        # 3 training episodes + the greedy evaluation
        assert len([r for r in records if r["type"] == "episode"]) == 4


class _BoomController(Controller):
    """Always raises a structured error (drives the safety fallback)."""

    def begin_episode(self):
        pass

    def finish_episode(self, learn=True):
        pass

    def act(self, *args, **kwargs):
        raise ConfigurationError("scripted controller failure")


class TestSafetyInstrumentation:
    def test_guard_and_transition_events(self, solver, tmp_path):
        path = tmp_path / "t.jsonl"
        with Telemetry(path) as tel:
            supervisor = SafetySupervisor(_BoomController(), solver,
                                          telemetry=tel)
            supervisor.begin_episode()
            supervisor.act(10.0, 0.0, 0.60, 1.0)
            assert tel.metrics.counter("safety.guard_events").value == 2.0
            assert tel.metrics.counter("safety.transitions").value == 1.0
        records = read_events(path)
        kinds = [r["kind"] for r in records
                 if r["type"] == "guard_intervention"]
        assert kinds == ["controller_error", "fallback_engaged"]
        transitions = [r for r in records if r["type"] == "health_transition"]
        assert len(transitions) == 1
        assert transitions[0]["source"] == "NOMINAL"
        assert transitions[0]["target"] == "LIMP_HOME"


def _ok():
    return 42


class _FlakyOnce:
    """Raises on the first call, succeeds afterwards."""

    def __init__(self):
        self.calls = 0

    def __call__(self):
        self.calls += 1
        if self.calls == 1:
            raise ValueError("first attempt fails")
        return "recovered"


def _always_fails():
    raise ValueError("hopeless")


class TestSupervisorInstrumentation:
    def test_serial_task_events_and_retries(self, tmp_path):
        path = tmp_path / "t.jsonl"
        with Telemetry(path) as tel:
            supervisor = Supervisor(retries=1, telemetry=tel)
            sweep = supervisor.run([
                Task(key="good", fn=_ok, spec={"k": "good"}),
                Task(key="flaky", fn=_FlakyOnce(), spec={"k": "flaky"}),
                Task(key="bad", fn=_always_fails, spec={"k": "bad"}),
            ])
            assert sweep.results["flaky"] == "recovered"
            assert tel.metrics.counter("exec.retries").value == 2.0
            assert tel.metrics.counter("exec.tasks_completed").value == 2.0
            assert tel.metrics.counter("exec.tasks_quarantined").value == 1.0
        records = read_events(path)
        tasks = {r["key"]: r for r in records if r["type"] == "task"}
        assert tasks["good"]["outcome"] == "ok"
        assert tasks["good"]["attempts"] == 1
        assert tasks["flaky"]["outcome"] == "ok"
        assert tasks["flaky"]["attempts"] == 2
        assert tasks["bad"]["outcome"] == "quarantined"
        assert tasks["bad"]["attempts"] == 2
        span_names = [r["name"] for r in records if r["type"] == "span"]
        assert span_names.count("exec.task") == 3
        assert span_names[-1] == "exec.sweep"

    def test_isolated_tasks_traced_with_shared_trace_id(self, tmp_path):
        path = tmp_path / "t.jsonl"
        with Telemetry(path) as tel:
            supervisor = Supervisor(jobs=2, telemetry=tel)
            sweep = supervisor.run([
                Task(key="a", fn=_ok, spec={"k": "a"}),
                Task(key="b", fn=_ok, spec={"k": "b"}),
            ])
        assert sweep.results == {"a": 42, "b": 42}
        records = read_events(path)
        spans = [r for r in records if r["type"] == "span"]
        task_spans = [s for s in spans if s["name"] == "exec.task"]
        sweep_span = next(s for s in spans if s["name"] == "exec.sweep")
        assert len(task_spans) == 2
        for span in task_spans:
            assert span["attributes"]["outcome"] == "ok"
            assert span["parent_id"] == sweep_span["span_id"]
            assert span["trace_id"] == sweep_span["trace_id"]

    def test_resumed_tasks_journaled(self, tmp_path):
        manifest_path = tmp_path / "m.jsonl"
        manifest = SweepManifest(manifest_path)
        task = Task(key="a", fn=_ok, spec={"k": "a"})
        Supervisor(manifest=manifest).run([task])
        path = tmp_path / "t.jsonl"
        with Telemetry(path) as tel:
            resumed = Supervisor(
                manifest=SweepManifest(manifest_path, resume=True),
                telemetry=tel)
            resumed.run([task])
            assert tel.metrics.counter("exec.tasks_resumed").value == 1.0
        tasks = [r for r in read_events(path) if r["type"] == "task"]
        assert tasks[0]["outcome"] == "resumed"
        assert tasks[0]["attempts"] == 0


# ---------------------------------------------------------------- reports ---


class TestReports:
    def test_event_report_renders_sections(self, solver, cycle, tmp_path):
        path = tmp_path / "t.jsonl"
        with Telemetry(path) as tel:
            simulator = Simulator(solver, telemetry=tel)
            evaluate(simulator, RuleBasedController(solver), cycle)
            Supervisor(telemetry=tel).run(
                [Task(key="a", fn=_ok, spec={"k": "a"})])
        summary = summarize_events(path)
        text = summary.render()
        assert "sim.episode" in text
        assert "episodes: 1" in text
        assert "supervised tasks: 1 (ok=1)" in text
        assert "final metrics snapshot" in text
        assert summarize(path) == text

    def test_manifest_report_counts_latency(self, tmp_path):
        path = tmp_path / "m.jsonl"
        manifest = SweepManifest(path)
        manifest.record_success(Task(key="fast", fn=_ok, spec={"k": "f"}),
                                payload=1, attempts=1, elapsed=0.25)
        manifest.record_failure(
            Task(key="slow", fn=_ok, spec={"k": "s"}),
            TaskFailure(key="slow", kind="timeout", exception_type="",
                        message="killed", traceback="", attempts=2,
                        elapsed=4.0))
        summary = summarize_manifest(path)
        assert summary.ok == 1
        assert summary.quarantined == 1
        assert summary.attempts == 3
        assert summary.retries == 1
        assert summary.slowest[0] == ("slow", 4.0)
        text = summary.render()
        assert "ok=1, quarantined=1" in text
        assert summarize(path) == text

    def test_manifest_lines_carry_latency_at_top_level(self, tmp_path):
        path = tmp_path / "m.jsonl"
        manifest = SweepManifest(path)
        manifest.record_success(Task(key="a", fn=_ok, spec={"k": "a"}),
                                payload=1, attempts=1, elapsed=0.5)
        manifest.record_failure(
            Task(key="b", fn=_ok, spec={"k": "b"}),
            TaskFailure(key="b", kind="error", exception_type="ValueError",
                        message="x", traceback="", attempts=2, elapsed=1.5))
        lines = [json.loads(line) for line in
                 path.read_text().splitlines()[1:]]
        for record in lines:
            assert "completed_unix" in record
            assert isinstance(record["attempts"], int)
            assert isinstance(record["elapsed"], float)

    def test_summarize_rejects_unknown_file(self, tmp_path):
        path = tmp_path / "x.jsonl"
        path.write_text('{"type": "mystery"}\n')
        with pytest.raises(TelemetryError):
            summarize(path)


# -------------------------------------------------------------------- CLI ---


class TestCLITelemetry:
    def test_evaluate_with_telemetry_then_report(self, tmp_path, capsys):
        path = tmp_path / "run.jsonl"
        assert main(["evaluate", "--cycle", "SC03", "--repeats", "1",
                     "--controller", "rule-based", "--guard",
                     "--telemetry", str(path)]) == 0
        assert path.exists()
        capsys.readouterr()
        assert main(["telemetry", "report", str(path)]) == 0
        out = capsys.readouterr().out
        assert "telemetry report:" in out
        assert "sim.episode" in out

    def test_existing_telemetry_path_is_structured_error(self, tmp_path,
                                                         capsys):
        path = tmp_path / "run.jsonl"
        path.write_text("occupied\n")
        assert main(["evaluate", "--cycle", "SC03", "--repeats", "1",
                     "--telemetry", str(path)]) == 2
        assert "already exists" in capsys.readouterr().err

    def test_report_missing_file_is_structured_error(self, tmp_path,
                                                     capsys):
        assert main(["telemetry", "report",
                     str(tmp_path / "missing.jsonl")]) == 2
        assert "error:" in capsys.readouterr().err
