"""Tests of the driveability metrics in :mod:`repro.analysis.traces`."""

import numpy as np
import pytest

from repro.analysis.traces import driveability
from repro.control import RuleBasedController
from repro.cycles import CycleSpec, synthesize
from repro.powertrain import PowertrainSolver
from repro.sim import Simulator, evaluate
from repro.vehicle import default_vehicle


@pytest.fixture(scope="module")
def result():
    solver = PowertrainSolver(default_vehicle())
    cycle = synthesize(CycleSpec("dv", duration=200, mean_speed_kmh=28.0,
                                 max_speed_kmh=60.0, stop_count=3, seed=99))
    return evaluate(Simulator(solver), RuleBasedController(solver), cycle)


class TestDriveability:
    def test_all_metrics_present_and_finite(self, result):
        metrics = driveability(result)
        assert set(metrics) == {"gear_shifts_per_km",
                                "mode_switches_per_km",
                                "engine_starts_per_km"}
        assert all(np.isfinite(v) and v >= 0 for v in metrics.values())

    def test_gear_shifts_happen_on_mixed_cycle(self, result):
        assert driveability(result)["gear_shifts_per_km"] > 0.0

    def test_mode_switches_at_least_engine_starts(self, result):
        metrics = driveability(result)
        # Every engine start implies at least one mode change.
        assert (metrics["mode_switches_per_km"]
                >= metrics["engine_starts_per_km"] - 1e-9)

    def test_plausible_magnitudes(self, result):
        metrics = driveability(result)
        # A sane controller shifts a handful of times per km, not hundreds.
        assert metrics["gear_shifts_per_km"] < 60.0
        assert metrics["engine_starts_per_km"] < 30.0
