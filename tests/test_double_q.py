"""Tests of the double Q-learning extension."""

import numpy as np
import pytest

from repro.rl.double_q import DoubleQLearner
from repro.rl.td_lambda import TDLambdaConfig
from repro.rl.agent import JointControlAgent
from repro.rl.exploration import EpsilonGreedy
from repro.powertrain import PowertrainSolver
from repro.vehicle import default_vehicle


class TestDoubleQLearner:
    def test_update_moves_mean_table(self):
        learner = DoubleQLearner(4, 2, TDLambdaConfig(), seed=0)
        before = learner.qtable.values.copy()
        learner.update(0, 1, 5.0, 1)
        assert not np.array_equal(learner.qtable.values, before)

    def test_terminal_updates_both_tables(self):
        cfg = TDLambdaConfig(learning_rate=1.0, learning_rate_decay=0.0)
        learner = DoubleQLearner(2, 1, cfg, seed=0)
        learner.update_terminal(0, 0, -3.0)
        assert learner.qtable.values[0, 0] == pytest.approx(-3.0, abs=1e-5)

    def test_annealing_advances_per_episode(self):
        cfg = TDLambdaConfig(learning_rate=0.2, learning_rate_decay=0.5)
        learner = DoubleQLearner(2, 1, cfg, seed=0)
        assert learner.learning_rate == pytest.approx(0.2)
        learner.update(0, 0, 1.0, 1)
        learner.start_episode()
        assert learner.learning_rate == pytest.approx(0.2 / 1.5)

    def test_converges_on_two_state_mdp(self):
        cfg = TDLambdaConfig(learning_rate=0.2, discount=0.5,
                             learning_rate_decay=0.0)
        learner = DoubleQLearner(2, 2, cfg, seed=1)
        rng = np.random.default_rng(0)
        state = 0
        for _ in range(12_000):
            action = (int(rng.integers(0, 2)) if rng.random() < 0.3
                      else learner.qtable.best_action(state))
            next_state = state if action == 0 else 1 - state
            reward = 1.0 if next_state == 1 else 0.0
            learner.update(state, action, reward, next_state)
            state = next_state
        assert learner.qtable.values[1, 0] == pytest.approx(2.0, abs=0.2)
        assert learner.qtable.best_action(0) == 1
        assert learner.qtable.best_action(1) == 0

    def test_reduces_maximisation_bias(self):
        """Classic double-Q demonstration: from state 0 the 'trap' action
        leads to a state with many zero-mean noisy arms; plain Q-learning
        overestimates it, double Q does not (as much)."""
        def run(double: bool, seed: int) -> float:
            cfg = TDLambdaConfig(learning_rate=0.1, discount=0.9,
                                 trace_decay=0.0, learning_rate_decay=0.0)
            if double:
                learner = DoubleQLearner(2, 8, cfg, seed=seed)
            else:
                from repro.rl.td_lambda import TDLambdaLearner
                learner = TDLambdaLearner(2, 8, cfg, seed=seed)
            rng = np.random.default_rng(seed + 100)
            for _ in range(4000):
                # state 1 has 8 noisy arms with mean -0.2, terminal.
                arm = int(rng.integers(0, 8))
                reward = rng.normal(-0.2, 1.0)
                learner.update_terminal(1, arm, reward)
                # state 0, action 0 -> state 1 with no reward.
                learner.update(0, 0, 0.0, 1)
            return float(learner.qtable.values[0, 0])

        plain = np.mean([run(False, s) for s in range(5)])
        double = np.mean([run(True, s) for s in range(5)])
        # True value is gamma * (-0.2) = -0.18; plain Q overestimates more.
        assert double < plain


class TestAgentIntegration:
    def test_agent_accepts_double_q(self):
        solver = PowertrainSolver(default_vehicle())
        agent = JointControlAgent(solver, algorithm="double_q",
                                  exploration=EpsilonGreedy(seed=0), seed=0)
        agent.begin_episode()
        step = agent.act(12.0, 0.3, 0.6, dt=1.0)
        assert step.fuel_rate >= 0.0
        agent.act(12.5, 0.1, 0.6, dt=1.0)
        agent.finish_episode()

    def test_rejects_unknown_algorithm(self):
        solver = PowertrainSolver(default_vehicle())
        with pytest.raises(ValueError):
            JointControlAgent(solver, algorithm="sarsa")
