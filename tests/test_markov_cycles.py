"""Tests of the Markov-chain trip generator in :mod:`repro.cycles.markov`."""

import numpy as np
import pytest

from repro.cycles import standard_cycle
from repro.cycles.markov import ChainModel, fit_chain, generate_trip
from repro.cycles.stats import compute_stats


@pytest.fixture(scope="module")
def model():
    return fit_chain(standard_cycle("UDDS"))


class TestFitChain:
    def test_counts_shape(self, model):
        assert model.transition_counts.shape[0] == model.num_speed_bins

    def test_rejects_few_bins(self):
        with pytest.raises(ValueError):
            fit_chain(standard_cycle("SC03"), speed_bins=1)

    def test_rejects_negative_smoothing(self):
        with pytest.raises(ValueError):
            fit_chain(standard_cycle("SC03"), smoothing=-1.0)

    def test_max_speed_from_cycle(self, model):
        assert model.max_speed == pytest.approx(
            standard_cycle("UDDS").max_speed)


class TestGenerateTrip:
    def test_valid_cycle(self, model):
        trip = generate_trip(model, duration=300, seed=1)
        assert np.all(trip.speeds >= 0.0)
        assert trip.max_speed <= model.max_speed + 1e-9
        assert trip.speeds[0] == 0.0
        assert trip.speeds[-1] == 0.0

    def test_deterministic_per_seed(self, model):
        a = generate_trip(model, duration=200, seed=7)
        b = generate_trip(model, duration=200, seed=7)
        assert np.array_equal(a.speeds, b.speeds)

    def test_seeds_differ(self, model):
        a = generate_trip(model, duration=200, seed=1)
        b = generate_trip(model, duration=200, seed=2)
        assert not np.array_equal(a.speeds, b.speeds)

    def test_rejects_tiny_duration(self, model):
        with pytest.raises(ValueError):
            generate_trip(model, duration=10, seed=0)

    def test_accelerations_bounded(self, model):
        trip = generate_trip(model, duration=400, seed=3)
        acc = np.diff(trip.speeds)
        assert np.max(np.abs(acc)) <= 2.0

    def test_statistics_resemble_source(self, model):
        # A UDDS-fitted chain should generate urban-ish trips: mean speed
        # within a factor-2 band of UDDS and some stops.
        source = compute_stats(standard_cycle("UDDS"))
        trips = [generate_trip(model, duration=600, seed=s)
                 for s in range(4)]
        means = [compute_stats(t).mean_speed_kmh for t in trips]
        assert 0.4 * source.mean_speed_kmh < np.mean(means) \
            < 2.2 * source.mean_speed_kmh

    def test_trip_is_drivable(self, model):
        # The default vehicle must be able to follow a generated trip.
        from repro.control import RuleBasedController
        from repro.powertrain import PowertrainSolver
        from repro.sim import Simulator, evaluate
        from repro.vehicle import default_vehicle
        solver = PowertrainSolver(default_vehicle())
        trip = generate_trip(model, duration=200, seed=11)
        result = evaluate(Simulator(solver), RuleBasedController(solver),
                          trip)
        assert result.fallback_steps <= 0.05 * len(result.fuel_rate)
