"""Tests of the backward-looking powertrain solver (Section 2.2 control flow)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.powertrain import OperatingMode, PowertrainSolver
from repro.vehicle import default_vehicle


@pytest.fixture(scope="module")
def solver():
    return PowertrainSolver(default_vehicle())


def evaluate_one(solver, v, a, soc, i, gear, aux, dt=1.0):
    return solver.evaluate(v, a, soc, i, gear, aux, dt)


class TestStandstill:
    def test_idle_mode(self, solver):
        pt = evaluate_one(solver, 0.0, 0.0, 0.6, 20.0, 0, 600.0)
        assert pt.mode == OperatingMode.IDLE
        assert pt.fuel_rate == 0.0
        assert pt.engine_torque == 0.0
        assert pt.motor_torque == 0.0

    def test_aux_drains_battery(self, solver):
        pt = evaluate_one(solver, 0.0, 0.0, 0.6, 0.0, 0, 600.0)
        assert pt.battery_current > 0.0
        assert pt.battery_power == pytest.approx(600.0, rel=1e-3)

    def test_commanded_current_ignored(self, solver):
        a = evaluate_one(solver, 0.0, 0.0, 0.6, -50.0, 0, 600.0)
        b = evaluate_one(solver, 0.0, 0.0, 0.6, 50.0, 0, 600.0)
        assert a.battery_current == pytest.approx(b.battery_current)


class TestModeCoverage:
    """The solver must produce all five paper operating modes."""

    def test_ice_only(self, solver):
        pt = evaluate_one(solver, 15.0, 0.3, 0.6, 0.0, 2, 600.0)
        # Small aux draw discharge means the EM torque is slightly negative
        # or negligible; engine carries the load.
        assert pt.engine_torque > 0.0

    def test_em_only(self, solver):
        pt = evaluate_one(solver, 5.0, 0.5, 0.7, 30.0, 2, 600.0)
        assert pt.mode == OperatingMode.EM_ONLY
        assert pt.engine_torque == 0.0
        assert pt.motor_torque > 0.0
        assert pt.fuel_rate == 0.0

    def test_hybrid(self, solver):
        pt = evaluate_one(solver, 20.0, 1.0, 0.6, 40.0, 2, 600.0)
        assert pt.mode == OperatingMode.HYBRID
        assert pt.engine_torque > 0.0
        assert pt.motor_torque > 0.0

    def test_charging_while_driving(self, solver):
        pt = evaluate_one(solver, 15.0, 0.2, 0.5, -20.0, 2, 600.0)
        assert pt.mode == OperatingMode.CHARGING
        assert pt.engine_torque > 0.0
        assert pt.motor_torque < 0.0
        assert pt.battery_current < 0.0

    def test_regen_braking(self, solver):
        pt = evaluate_one(solver, 12.0, -1.5, 0.6, -30.0, 2, 600.0)
        assert pt.mode == OperatingMode.REGEN
        assert pt.motor_torque < 0.0
        assert pt.fuel_rate == 0.0
        assert pt.battery_current < 0.0


class TestSaturationSemantics:
    def test_ev_when_engine_below_idle(self, solver):
        # In 5th gear at low speed the crankshaft would be below idle: the
        # engine must be declutched and the EM carry everything.
        pt = evaluate_one(solver, 4.0, 0.3, 0.7, 0.0, 4, 600.0)
        assert pt.engine_torque == 0.0
        assert pt.engine_speed == 0.0
        assert pt.fuel_rate == 0.0

    def test_em_overdelivery_cut_back(self, solver):
        # A huge discharge current at tiny demand: the EM would over-deliver,
        # so the solver must cut it back to exactly meet demand.
        pt = evaluate_one(solver, 10.0, 0.0, 0.7, 60.0, 1, 600.0)
        assert pt.feasible
        wheel = solver.transmission.wheel_torque(
            pt.engine_torque, pt.motor_torque, pt.gear)
        assert float(wheel) == pytest.approx(pt.wheel_torque, rel=1e-6)

    def test_brake_blends_regen_and_friction(self, solver):
        pt = evaluate_one(solver, 15.0, -2.5, 0.6, -60.0, 2, 600.0)
        assert pt.brake_torque < 0.0  # friction takes the remainder
        assert pt.motor_torque < 0.0  # regen active

    def test_no_motoring_against_brakes(self, solver):
        pt = evaluate_one(solver, 10.0, -1.0, 0.6, 40.0, 2, 600.0)
        assert pt.motor_torque <= 0.0

    def test_infeasible_when_demand_exceeds_everything(self, solver):
        # 3 m/s^2 at 30 m/s is ~135 kW: far beyond engine + motor.
        pt = evaluate_one(solver, 30.0, 3.0, 0.6, 60.0, 4, 600.0)
        assert not pt.feasible

    def test_window_blocks_discharge_below_slack(self, solver):
        # Beyond the solver's slack band a discharging action is infeasible.
        batch = solver.evaluate_actions(
            10.0, 0.0, solver.params.battery.soc_min - 0.02,
            [40.0], [1], [600.0], dt=1.0)
        assert not bool(batch.window_ok[0])
        assert not bool(batch.feasible[0])

    def test_window_blocks_charge_above_slack(self, solver):
        batch = solver.evaluate_actions(
            10.0, 0.0, solver.params.battery.soc_max + 0.02,
            [-40.0], [1], [600.0], dt=1.0)
        assert not bool(batch.window_ok[0])
        assert not bool(batch.feasible[0])

    def test_window_slack_tolerates_small_excursion(self, solver):
        # Just past the bound but inside the slack band stays solvable, so
        # boundary states always have at least one feasible action.
        batch = solver.evaluate_actions(
            10.0, 0.0, solver.params.battery.soc_min - 0.005,
            [0.0], [1], [600.0], dt=1.0)
        assert bool(batch.window_ok[0])


class TestBatchConsistency:
    def test_batch_matches_scalar(self, solver):
        currents = [-20.0, 0.0, 20.0]
        batch = solver.evaluate_actions(15.0, 0.3, 0.6, currents, [2, 2, 2],
                                        [600.0] * 3, dt=1.0)
        for idx, i in enumerate(currents):
            pt = evaluate_one(solver, 15.0, 0.3, 0.6, i, 2, 600.0)
            assert pt.fuel_rate == pytest.approx(float(batch.fuel_rate[idx]))
            assert pt.battery_current == pytest.approx(
                float(batch.battery_current[idx]))

    def test_rejects_misaligned_arrays(self, solver):
        with pytest.raises(ValueError):
            solver.evaluate_actions(10.0, 0.0, 0.6, [0.0, 1.0], [0], [600.0],
                                    dt=1.0)

    def test_rejects_nonpositive_dt(self, solver):
        with pytest.raises(ValueError):
            solver.evaluate_actions(10.0, 0.0, 0.6, [0.0], [0], [600.0],
                                    dt=0.0)


class TestPhysicalInvariants:
    @settings(max_examples=60, deadline=None)
    @given(st.floats(min_value=0.0, max_value=30.0),
           st.floats(min_value=-2.0, max_value=2.0),
           st.floats(min_value=0.42, max_value=0.78),
           st.floats(min_value=-60.0, max_value=60.0),
           st.integers(min_value=0, max_value=4),
           st.floats(min_value=200.0, max_value=2000.0))
    def test_invariants_hold_everywhere(self, v, a, soc, i, gear, aux):
        solver = PowertrainSolver(default_vehicle())
        pt = solver.evaluate(v, a, soc, i, gear, aux, dt=1.0)
        # Fuel can never be negative; brakes can never push.
        assert pt.fuel_rate >= 0.0
        assert pt.brake_torque <= 1e-9
        # Engine never back-driven.
        assert pt.engine_torque >= 0.0
        # Executed current within pack limits.
        imax = solver.params.battery.max_current
        assert abs(pt.battery_current) <= imax + 1e-6
        # Component envelopes respected on feasible points.
        if pt.feasible and pt.engine_speed > 0:
            assert pt.engine_torque <= float(
                solver.engine.max_torque(pt.engine_speed)) + 1e-6
        if pt.feasible:
            assert abs(pt.motor_torque) <= float(
                solver.motor.max_torque(pt.motor_speed)) + 1e-6

    @settings(max_examples=40, deadline=None)
    @given(st.floats(min_value=0.5, max_value=30.0),
           st.floats(min_value=-2.0, max_value=2.0),
           st.integers(min_value=0, max_value=4))
    def test_feasible_points_meet_demand(self, v, a, gear):
        solver = PowertrainSolver(default_vehicle())
        pt = solver.evaluate(v, a, 0.6, 10.0, gear, 600.0, dt=1.0)
        if pt.feasible and pt.wheel_torque >= 0:
            delivered = float(solver.transmission.wheel_torque(
                pt.engine_torque, pt.motor_torque, pt.gear))
            assert delivered == pytest.approx(pt.wheel_torque,
                                              rel=1e-5, abs=1e-5)

    @settings(max_examples=40, deadline=None)
    @given(st.floats(min_value=0.5, max_value=30.0),
           st.floats(min_value=-3.0, max_value=-0.2))
    def test_braking_energy_balance(self, v, a):
        # During braking, regen torque plus friction torque must equal the
        # demanded wheel torque.
        solver = PowertrainSolver(default_vehicle())
        pt = solver.evaluate(v, a, 0.6, -40.0, 2, 600.0, dt=1.0)
        if pt.wheel_torque < 0:
            powertrain_part = float(solver.transmission.wheel_torque(
                0.0, pt.motor_torque, pt.gear))
            assert powertrain_part + pt.brake_torque == pytest.approx(
                pt.wheel_torque, rel=1e-5, abs=1e-3)

    @settings(max_examples=30, deadline=None)
    @given(st.floats(min_value=0.45, max_value=0.75),
           st.floats(min_value=-50.0, max_value=50.0))
    def test_soc_next_matches_coulomb_counting(self, soc, i):
        solver = PowertrainSolver(default_vehicle())
        batch = solver.evaluate_actions(15.0, 0.0, soc, [i], [2], [600.0],
                                        dt=1.0)
        state = solver.battery.initial_state(soc)
        stepped = solver.battery.step(state, float(batch.battery_current[0]),
                                      1.0)
        assert float(batch.soc_next[0]) == pytest.approx(
            solver.battery.soc(stepped), abs=1e-9)


class TestWindowEdge:
    """Regression: a post-step SoC landing *exactly* on the slackened
    window edge must be feasible.

    The edge is computed as ``soc_min - slack`` in floats (0.4 - 0.01 =
    0.39000000000000007), while a Coulomb round trip that mathematically
    lands on 0.39 produces the float 0.39 — a few ULPs *below* the
    computed edge.  Without the edge tolerance the raw comparison declared
    such landings infeasible.
    """

    def test_exact_edge_landing_is_feasible(self, solver):
        from repro.powertrain.solver import _WINDOW_SLACK
        p = solver.params.battery
        # 78 A for 3 s removes exactly 234 C = 1% of the 23 400 C pack:
        # a landing mathematically on the slackened floor.
        soc_next = solver._soc_after(np.array([78.0]), p.soc_min, 3.0)
        # The float round trip puts the landing at or below the computed
        # edge (this is the situation that used to be rejected).
        assert soc_next[0] <= p.soc_min - _WINDOW_SLACK
        assert bool(solver._window_ok(soc_next)[0])

    def test_clearly_outside_still_infeasible(self, solver):
        p = solver.params.battery
        below = np.array([p.soc_min - 0.02])
        above = np.array([p.soc_max + 0.02])
        assert not bool(solver._window_ok(below)[0])
        assert not bool(solver._window_ok(above)[0])
