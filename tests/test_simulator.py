"""Tests of the episode simulator and training loop."""

import numpy as np
import pytest

from repro.control import RuleBasedController, build_rl_controller
from repro.cycles import CycleSpec, DriveCycle, synthesize
from repro.powertrain import PowertrainSolver
from repro.sim import Simulator, evaluate, train
from repro.vehicle import default_vehicle


@pytest.fixture(scope="module")
def solver():
    return PowertrainSolver(default_vehicle())


@pytest.fixture(scope="module")
def sim(solver):
    return Simulator(solver)


@pytest.fixture(scope="module")
def short_cycle():
    return synthesize(CycleSpec("short", duration=100, mean_speed_kmh=25.0,
                                max_speed_kmh=50.0, stop_count=2, seed=11))


class TestRunEpisode:
    def test_trace_lengths(self, sim, short_cycle):
        rb = RuleBasedController(sim.solver)
        result = sim.run_episode(rb, short_cycle)
        assert len(result.fuel_rate) == len(short_cycle) - 1
        assert len(result.soc) == len(result.fuel_rate)

    def test_soc_trace_follows_coulomb_counting(self, sim, short_cycle):
        rb = RuleBasedController(sim.solver)
        result = sim.run_episode(rb, short_cycle, initial_soc=0.6)
        battery = sim.solver.battery
        state = battery.initial_state(0.6)
        for t in range(len(result.current)):
            state = battery.step(state, float(result.current[t]),
                                 short_cycle.dt)
            assert result.soc[t] == pytest.approx(battery.soc(state),
                                                  abs=1e-9)

    def test_soc_respects_window_with_slack(self, sim, short_cycle):
        rb = RuleBasedController(sim.solver)
        result = sim.run_episode(rb, short_cycle)
        p = sim.solver.params.battery
        assert np.all(result.soc >= p.soc_min - 0.02)
        assert np.all(result.soc <= p.soc_max + 0.02)

    def test_distance_matches_cycle(self, sim, short_cycle):
        rb = RuleBasedController(sim.solver)
        result = sim.run_episode(rb, short_cycle)
        assert result.distance == pytest.approx(short_cycle.distance)

    def test_initial_soc_recorded(self, sim, short_cycle):
        rb = RuleBasedController(sim.solver)
        result = sim.run_episode(rb, short_cycle, initial_soc=0.7)
        assert result.initial_soc == 0.7


class TestEpisodeResultAggregates:
    @pytest.fixture(scope="class")
    def result(self, sim, short_cycle):
        return sim.run_episode(RuleBasedController(sim.solver), short_cycle)

    def test_total_fuel_is_integral(self, result):
        assert result.total_fuel == pytest.approx(
            float(np.sum(result.fuel_rate)) * result.dt)

    def test_rewards_negative(self, result):
        assert result.total_paper_reward < 0.0

    def test_mpg_positive_finite(self, result):
        assert 0.0 < result.mpg < 300.0

    def test_corrected_fuel_charges_deficit(self, sim, short_cycle):
        result = sim.run_episode(RuleBasedController(sim.solver), short_cycle,
                                 initial_soc=0.6)
        if result.final_soc < result.initial_soc:
            assert result.corrected_fuel() > result.total_fuel
        elif result.final_soc > result.initial_soc:
            assert result.corrected_fuel() < result.total_fuel

    def test_corrected_fuel_rejects_bad_efficiency(self, result):
        with pytest.raises(ValueError):
            result.corrected_fuel(0.0)

    def test_corrected_reward_tracks_fuel_correction(self, result):
        delta = result.corrected_fuel() - result.total_fuel
        assert result.corrected_paper_reward() == pytest.approx(
            result.total_paper_reward - delta)

    def test_corrected_reward_charges_deficit(self, result):
        if result.final_soc < result.initial_soc:
            assert (result.corrected_paper_reward()
                    < result.total_paper_reward)

    def test_mode_fractions_sum_to_one(self, result):
        assert sum(result.mode_fractions().values()) == pytest.approx(1.0)

    def test_summary_mentions_cycle(self, result):
        assert result.cycle_name in result.summary()

    def test_mean_aux_power_in_range(self, sim, result):
        aux = sim.solver.auxiliary
        assert aux.min_power <= result.mean_aux_power <= aux.max_power


class TestTraining:
    def test_training_runs_and_evaluates(self, solver, short_cycle):
        sim = Simulator(solver)
        ctrl = build_rl_controller(solver, seed=7)
        run = train(sim, ctrl, short_cycle, episodes=3)
        assert len(run.episodes) == 3
        assert run.evaluation is not None
        assert len(run.learning_curve) == 3
        assert len(run.paper_reward_curve) == 3

    def test_callback_invoked(self, solver, short_cycle):
        sim = Simulator(solver)
        ctrl = build_rl_controller(solver, seed=7)
        seen = []
        train(sim, ctrl, short_cycle, episodes=2,
              callback=lambda ep, res: seen.append(ep), evaluate_after=False)
        assert seen == [0, 1]

    def test_rejects_zero_episodes(self, solver, short_cycle):
        sim = Simulator(solver)
        ctrl = build_rl_controller(solver, seed=7)
        with pytest.raises(ValueError):
            train(sim, ctrl, short_cycle, episodes=0)

    def test_learning_improves_reward(self, solver):
        # On a tiny repetitive cycle, the trained greedy policy must beat
        # the untrained greedy policy.
        cycle = synthesize(CycleSpec("tiny", duration=90, mean_speed_kmh=22.0,
                                     max_speed_kmh=45.0, stop_count=1,
                                     seed=3)).repeat(2)
        sim = Simulator(solver)
        ctrl = build_rl_controller(solver, seed=13)
        before = evaluate(sim, ctrl, cycle)
        run = train(sim, ctrl, cycle, episodes=25)
        assert (run.evaluation.total_reward
                >= before.total_reward - 1e-6)

    def test_evaluation_deterministic(self, solver, short_cycle):
        sim = Simulator(solver)
        ctrl = build_rl_controller(solver, seed=7)
        train(sim, ctrl, short_cycle, episodes=2, evaluate_after=False)
        a = evaluate(sim, ctrl, short_cycle)
        b = evaluate(sim, ctrl, short_cycle)
        assert a.total_fuel == pytest.approx(b.total_fuel)
        assert np.array_equal(a.current, b.current)
