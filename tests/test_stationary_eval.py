"""Tests of the stationary-SoC evaluation helper."""

import pytest

from repro.control import RuleBasedController, ThermostatController
from repro.cycles import CycleSpec, synthesize
from repro.powertrain import PowertrainSolver
from repro.sim import Simulator, evaluate, evaluate_stationary
from repro.vehicle import default_vehicle


@pytest.fixture(scope="module")
def solver():
    return PowertrainSolver(default_vehicle())


@pytest.fixture(scope="module")
def cycle():
    return synthesize(CycleSpec("st", duration=150, mean_speed_kmh=26.0,
                                max_speed_kmh=52.0, stop_count=2, seed=81))


class TestEvaluateStationary:
    def test_reported_drive_is_charge_neutralish(self, solver, cycle):
        result = evaluate_stationary(Simulator(solver),
                                     RuleBasedController(solver), cycle)
        # Starting at the settled SoC, the drive should end near where it
        # started (within the controller's per-cycle ripple).
        assert abs(result.final_soc - result.initial_soc) < 0.05

    def test_initial_soc_is_settled_not_nominal(self, solver, cycle):
        sim = Simulator(solver)
        ctrl = RuleBasedController(solver)
        plain = evaluate(sim, ctrl, cycle, initial_soc=0.60)
        stationary = evaluate_stationary(sim, ctrl, cycle, initial_soc=0.60)
        assert stationary.initial_soc == pytest.approx(plain.final_soc)

    def test_multiple_settle_passes(self, solver, cycle):
        result = evaluate_stationary(Simulator(solver),
                                     ThermostatController(solver), cycle,
                                     settle_passes=2)
        assert abs(result.final_soc - result.initial_soc) < 0.06

    def test_rejects_zero_passes(self, solver, cycle):
        with pytest.raises(ValueError):
            evaluate_stationary(Simulator(solver),
                                RuleBasedController(solver), cycle,
                                settle_passes=0)

    def test_deterministic(self, solver, cycle):
        sim = Simulator(solver)
        ctrl = RuleBasedController(solver)
        a = evaluate_stationary(sim, ctrl, cycle)
        b = evaluate_stationary(sim, ctrl, cycle)
        assert a.total_fuel == pytest.approx(b.total_fuel)
