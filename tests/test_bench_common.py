"""Tests of the shared benchmark infrastructure in :mod:`benchmarks.common`.

The benches themselves take minutes; their plumbing (budget resolution,
cycle doubling, report persistence) is cheap and worth pinning down here.
"""

import pytest

from benchmarks import common


class TestBudgets:
    def test_default_budget(self, monkeypatch):
        monkeypatch.delenv("REPRO_BENCH_EPISODES", raising=False)
        assert common.bench_episodes() == 60

    def test_env_override(self, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_EPISODES", "15")
        assert common.bench_episodes() == 15

    def test_ablation_budget_is_capped(self, monkeypatch):
        monkeypatch.delenv("REPRO_BENCH_EPISODES", raising=False)
        # Ablations keep their own small default even when the main budget
        # is larger ...
        assert common.ablation_episodes(25) == 25
        # ... but shrink for quick passes.
        monkeypatch.setenv("REPRO_BENCH_EPISODES", "8")
        assert common.ablation_episodes(25) == 8


class TestBenchCycle:
    def test_doubles_the_cycle(self):
        from repro.cycles import standard_cycle
        doubled = common.bench_cycle("SC03")
        single = standard_cycle("SC03")
        assert doubled.distance == pytest.approx(2 * single.distance)

    def test_unknown_name_raises(self):
        with pytest.raises(KeyError):
            common.bench_cycle("NOPE")


class TestReport:
    def test_report_queues_and_persists(self, tmp_path, monkeypatch):
        monkeypatch.setattr(common, "_RESULTS_DIR", str(tmp_path))
        before = len(common.REPORTS)
        common.report("unit_test_report", "hello table")
        assert len(common.REPORTS) == before + 1
        assert (tmp_path / "unit_test_report.txt").read_text() == \
            "hello table\n"
        common.REPORTS.pop()  # leave global state as found
