"""Tests of the joint reward function (paper Section 4.3.3)."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.powertrain import PowertrainSolver
from repro.rl.reward import (
    RewardConfig,
    RewardFunction,
    build_reward_function,
    default_soc_price,
)
from repro.vehicle import default_vehicle
from repro.vehicle.auxiliary import UtilityFunction
from repro.vehicle.params import AuxiliaryParams


@pytest.fixture
def reward():
    utility = UtilityFunction(AuxiliaryParams())
    return RewardFunction(utility, RewardConfig(), soc_min=0.4, soc_max=0.8,
                          soc_price=450.0)


class TestRewardConfig:
    def test_defaults_valid(self):
        RewardConfig()

    def test_rejects_negative_weight(self):
        with pytest.raises(ValueError):
            RewardConfig(aux_weight=-1.0)

    def test_rejects_negative_penalties(self):
        with pytest.raises(ValueError):
            RewardConfig(window_penalty=-1.0)

    def test_rejects_negative_price(self):
        with pytest.raises(ValueError):
            RewardConfig(soc_price=-10.0)


class TestDefaultSocPrice:
    def test_prius_pack_scale(self):
        # 6.5 Ah x 271.5 V at 33% conversion: a few hundred grams per SoC.
        price = default_soc_price(6.5 * 3600, 271.5, 42_500.0)
        assert 300.0 < price < 600.0

    def test_rejects_bad_inputs(self):
        with pytest.raises(ValueError):
            default_soc_price(0.0, 100.0, 42_500.0)
        with pytest.raises(ValueError):
            default_soc_price(100.0, 100.0, 42_500.0, conversion_efficiency=0.0)


class TestPaperReward:
    def test_formula(self, reward):
        # r = (-mdot + w * f_aux(p_aux)) * dT with f_aux(600) = 0.
        r = float(reward.paper_reward(0.8, 600.0, 1.0))
        assert r == pytest.approx(-0.8)

    def test_aux_deviation_reduces_reward(self, reward):
        at_pref = float(reward.paper_reward(0.5, 600.0, 1.0))
        off_pref = float(reward.paper_reward(0.5, 1500.0, 1.0))
        assert off_pref < at_pref

    def test_scales_with_dt(self, reward):
        assert float(reward.paper_reward(0.5, 600.0, 2.0)) == pytest.approx(
            2.0 * float(reward.paper_reward(0.5, 600.0, 1.0)))

    def test_always_nonpositive_with_zero_peak_utility(self, reward):
        # Default utility peak is 0, fuel is nonnegative: Table-2-style sign.
        fuels = np.linspace(0.0, 3.0, 7)
        auxes = np.linspace(100.0, 2000.0, 7)
        r = np.asarray(reward.paper_reward(fuels, auxes, 1.0))
        assert np.all(r <= 1e-12)


class TestLearningReward:
    def test_matches_paper_reward_without_soc_terms(self, reward):
        r = float(reward(0.8, 600.0, 1.0))
        assert r == pytest.approx(float(reward.paper_reward(0.8, 600.0, 1.0)))

    def test_window_penalty_applies(self, reward):
        inside = float(reward(0.5, 600.0, 1.0, soc_next=0.6))
        outside = float(reward(0.5, 600.0, 1.0, soc_next=0.35))
        assert outside < inside

    def test_shaping_charges_discharge(self, reward):
        hold = float(reward(0.5, 600.0, 1.0, soc_next=0.6, soc_prev=0.6))
        drain = float(reward(0.5, 600.0, 1.0, soc_next=0.59, soc_prev=0.6))
        assert drain == pytest.approx(hold - 450.0 * 0.01)

    def test_shaping_credits_charge(self, reward):
        hold = float(reward(0.5, 600.0, 1.0, soc_next=0.6, soc_prev=0.6))
        bank = float(reward(0.5, 600.0, 1.0, soc_next=0.61, soc_prev=0.6))
        assert bank == pytest.approx(hold + 450.0 * 0.01)

    def test_shortfall_penalty(self, reward):
        ok = float(reward(0.5, 600.0, 1.0, shortfall=0.0))
        miss = float(reward(0.5, 600.0, 1.0, shortfall=100.0))
        assert miss < ok

    def test_config_price_overrides_derived(self):
        utility = UtilityFunction(AuxiliaryParams())
        rf = RewardFunction(utility, RewardConfig(soc_price=100.0),
                            0.4, 0.8, soc_price=450.0)
        assert rf.soc_price == 100.0

    @given(st.floats(min_value=0.0, max_value=3.0),
           st.floats(min_value=200.0, max_value=2000.0),
           st.floats(min_value=0.42, max_value=0.78))
    def test_round_trip_shaping_nets_zero(self, fuel, aux, soc):
        # soc range keeps both endpoints inside the window so the penalty
        # term stays silent and only the shaping term moves.
        utility = UtilityFunction(AuxiliaryParams())
        rf = RewardFunction(utility, RewardConfig(), 0.4, 0.8, soc_price=450.0)
        down = float(rf(fuel, aux, 1.0, soc_next=soc - 0.01, soc_prev=soc))
        up = float(rf(fuel, aux, 1.0, soc_next=soc, soc_prev=soc - 0.01))
        base = 2 * float(rf(fuel, aux, 1.0, soc_next=soc, soc_prev=soc))
        assert down + up == pytest.approx(base, abs=1e-9)


class TestWindowViolation:
    def test_zero_inside(self, reward):
        assert float(reward.window_violation(0.6)) == 0.0

    def test_linear_outside(self, reward):
        assert float(reward.window_violation(0.35)) == pytest.approx(0.05)
        assert float(reward.window_violation(0.9)) == pytest.approx(0.10)


class TestBuildRewardFunction:
    def test_derives_price_from_solver(self):
        solver = PowertrainSolver(default_vehicle())
        rf = build_reward_function(solver)
        assert 300.0 < rf.soc_price < 600.0

    def test_respects_config_price(self):
        solver = PowertrainSolver(default_vehicle())
        rf = build_reward_function(solver, RewardConfig(soc_price=42.0))
        assert rf.soc_price == 42.0
