"""Tests of the conventional-vehicle baseline controller."""

import numpy as np
import pytest

from repro.analysis.traces import energy_account
from repro.control import (
    ConventionalConfig,
    ConventionalController,
    RuleBasedController,
)
from repro.cycles import CycleSpec, synthesize
from repro.powertrain import PowertrainSolver
from repro.sim import Simulator, evaluate_stationary
from repro.vehicle import default_vehicle


@pytest.fixture(scope="module")
def solver():
    return PowertrainSolver(default_vehicle())


@pytest.fixture(scope="module")
def cycle():
    return synthesize(CycleSpec("cv", duration=240, mean_speed_kmh=28.0,
                                max_speed_kmh=60.0, stop_count=3,
                                seed=111)).repeat(2)


class TestConfig:
    def test_defaults_valid(self):
        ConventionalConfig()

    def test_rejects_discharging_alternator(self):
        with pytest.raises(ValueError):
            ConventionalConfig(alternator_current=5.0)

    def test_rejects_bad_target(self):
        with pytest.raises(ValueError):
            ConventionalConfig(soc_target=1.5)


class TestBehaviour:
    @pytest.fixture(scope="class")
    def result(self, solver, cycle):
        return evaluate_stationary(Simulator(solver),
                                   ConventionalController(solver), cycle)

    def test_no_regen_during_braking(self, result):
        # Braking energy goes to the friction brakes: the pack is never
        # charged while the demand is negative.  (energy_account's
        # regen_fraction would also count alternator charging, so inspect
        # the braking steps directly.)
        braking = result.power_demand < -500.0
        assert np.any(braking)
        assert np.all(result.current[braking] >= -1e-9)

    def test_no_electric_assist_at_speed(self, solver):
        ctrl = ConventionalController(solver)
        ctrl.begin_episode()
        step = ctrl.act(18.0, 0.8, 0.6, dt=1.0)
        # The engine carries the traction; the EM at most carries the
        # small aux/alternator balance.
        assert step.fuel_rate > 0.0
        assert abs(step.current) < 10.0

    def test_alternator_charges_when_low(self, solver):
        ctrl = ConventionalController(solver)
        ctrl.begin_episode()
        step = ctrl.act(15.0, 0.1, 0.45, dt=1.0)
        assert step.current < 0.0

    def test_hybrid_beats_conventional(self, solver, cycle, result):
        # The headline claim of the paper's introduction: hybrid operation
        # (even just the rule-based strategy) beats conventional operation
        # on the same vehicle.
        hybrid = evaluate_stationary(Simulator(solver),
                                     RuleBasedController(solver), cycle)
        assert hybrid.corrected_fuel() < result.corrected_fuel() * 0.97

    def test_runs_clean(self, result):
        assert result.fallback_steps <= 3
        assert np.all(result.fuel_rate >= 0.0)
