"""Tests of the terminal plotting helpers."""

import numpy as np
import pytest

from repro.analysis.ascii_plot import line_chart, soc_strip, sparkline


class TestSparkline:
    def test_constant_series_mid_level(self):
        s = sparkline([5.0, 5.0, 5.0])
        assert s == "▄▄▄"

    def test_monotone_rises(self):
        s = sparkline([0.0, 1.0, 2.0, 3.0])
        assert s[0] == "▁"
        assert s[-1] == "█"

    def test_resamples_to_width(self):
        s = sparkline(np.linspace(0, 1, 500), width=40)
        assert len(s) == 40

    def test_short_series_unpadded(self):
        assert len(sparkline([1.0, 2.0], width=60)) == 2

    def test_empty_series(self):
        assert sparkline([]) == ""

    def test_rejects_bad_width(self):
        with pytest.raises(ValueError):
            sparkline([1.0], width=0)

    def test_spike_survives_resampling(self):
        vals = np.zeros(300)
        vals[150:156] = 10.0
        s = sparkline(vals, width=50)
        assert any(c in "▅▆▇█" for c in s)


class TestLineChart:
    def test_contains_title_and_axis(self):
        chart = line_chart([1.0, 2.0, 3.0, 2.0], title="curve")
        assert chart.startswith("curve")
        assert "|" in chart
        assert "*" in chart

    def test_row_count(self):
        chart = line_chart(list(range(20)), height=7)
        # title-less: height rows plus the x-axis line.
        assert len(chart.splitlines()) == 8

    def test_peak_on_top_row(self):
        chart = line_chart([0.0, 0.0, 10.0, 0.0], height=5)
        top = chart.splitlines()[0]
        assert "*" in top

    def test_rejects_single_point(self):
        with pytest.raises(ValueError):
            line_chart([1.0])

    def test_rejects_tiny_dimensions(self):
        with pytest.raises(ValueError):
            line_chart([1.0, 2.0], width=2)


class TestSocStrip:
    def test_annotates_endpoints(self):
        strip = soc_strip([0.6, 0.55, 0.5])
        assert "start=0.60" in strip
        assert "end=0.50" in strip
        assert "40%" in strip and "80%" in strip
