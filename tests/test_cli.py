"""Tests of the command-line interface."""

import pytest

from repro.cli import main


class TestCyclesCommand:
    def test_list(self, capsys):
        assert main(["cycles"]) == 0
        out = capsys.readouterr().out
        assert "UDDS" in out
        assert "HWFET" in out

    def test_export(self, tmp_path, capsys):
        out_path = tmp_path / "udds.csv"
        assert main(["cycles", "--export", "UDDS",
                     "--output", str(out_path)]) == 0
        assert out_path.exists()
        header = out_path.read_text().splitlines()[0]
        assert "time_s" in header

    def test_unknown_cycle_raises(self, tmp_path):
        with pytest.raises(KeyError):
            main(["cycles", "--export", "NOPE",
                  "--output", str(tmp_path / "x.csv")])


class TestTrainCommand:
    def test_train_and_save(self, tmp_path, capsys):
        stem = tmp_path / "policy"
        assert main(["train", "--cycle", "SC03", "--episodes", "2",
                     "--repeats", "1", "--save", str(stem)]) == 0
        assert stem.with_suffix(".npz").exists()
        out = capsys.readouterr().out
        assert "greedy evaluation" in out


class TestEvaluateCommand:
    def test_rule_based(self, capsys):
        assert main(["evaluate", "--cycle", "SC03", "--repeats", "1",
                     "--controller", "rule-based"]) == 0
        out = capsys.readouterr().out
        assert "regen share" in out
        assert "mode share" in out

    def test_rl_with_saved_policy(self, tmp_path, capsys):
        stem = tmp_path / "p"
        main(["train", "--cycle", "SC03", "--episodes", "2",
              "--repeats", "1", "--save", str(stem)])
        assert main(["evaluate", "--cycle", "SC03", "--repeats", "1",
                     "--controller", "rl", "--policy", str(stem)]) == 0

    def test_thermostat(self, capsys):
        assert main(["evaluate", "--cycle", "SC03", "--repeats", "1",
                     "--controller", "thermostat"]) == 0


class TestCompareCommand:
    def test_compare_prints_ladder(self, capsys):
        assert main(["compare", "--cycle", "SC03", "--episodes", "2",
                     "--repeats", "1"]) == 0
        out = capsys.readouterr().out
        assert "rl (proposed)" in out
        assert "ecms" in out
        assert "thermostat" in out


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            main([])

    def test_rejects_unknown_variant(self):
        with pytest.raises(SystemExit):
            main(["train", "--variant", "nope"])
