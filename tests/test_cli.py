"""Tests of the command-line interface."""

import pytest

from repro.cli import main


class TestCyclesCommand:
    def test_list(self, capsys):
        assert main(["cycles"]) == 0
        out = capsys.readouterr().out
        assert "UDDS" in out
        assert "HWFET" in out

    def test_export(self, tmp_path, capsys):
        out_path = tmp_path / "udds.csv"
        assert main(["cycles", "--export", "UDDS",
                     "--output", str(out_path)]) == 0
        assert out_path.exists()
        header = out_path.read_text().splitlines()[0]
        assert "time_s" in header

    def test_unknown_cycle_is_structured_error(self, tmp_path, capsys):
        assert main(["cycles", "--export", "NOPE",
                     "--output", str(tmp_path / "x.csv")]) == 2
        assert "unknown cycle" in capsys.readouterr().err


class TestTrainCommand:
    def test_train_and_save(self, tmp_path, capsys):
        stem = tmp_path / "policy"
        assert main(["train", "--cycle", "SC03", "--episodes", "2",
                     "--repeats", "1", "--save", str(stem)]) == 0
        assert stem.with_suffix(".npz").exists()
        out = capsys.readouterr().out
        assert "greedy evaluation" in out


class TestEvaluateCommand:
    def test_rule_based(self, capsys):
        assert main(["evaluate", "--cycle", "SC03", "--repeats", "1",
                     "--controller", "rule-based"]) == 0
        out = capsys.readouterr().out
        assert "regen share" in out
        assert "mode share" in out

    def test_rl_with_saved_policy(self, tmp_path, capsys):
        stem = tmp_path / "p"
        main(["train", "--cycle", "SC03", "--episodes", "2",
              "--repeats", "1", "--save", str(stem)])
        assert main(["evaluate", "--cycle", "SC03", "--repeats", "1",
                     "--controller", "rl", "--policy", str(stem)]) == 0

    def test_thermostat(self, capsys):
        assert main(["evaluate", "--cycle", "SC03", "--repeats", "1",
                     "--controller", "thermostat"]) == 0


class TestCompareCommand:
    def test_compare_prints_ladder(self, capsys):
        assert main(["compare", "--cycle", "SC03", "--episodes", "2",
                     "--repeats", "1"]) == 0
        out = capsys.readouterr().out
        assert "rl (proposed)" in out
        assert "ecms" in out
        assert "thermostat" in out


class TestSweepCommand:
    def test_serial_sweep_reports_coverage(self, capsys):
        assert main(["sweep", "--cycle", "SC03", "--repeats", "1",
                     "--controllers", "rule-based",
                     "--scenarios", "aux_spike"]) == 0
        out = capsys.readouterr().out
        assert "Robustness sweep" in out
        assert "coverage: 2/2 runs, nothing quarantined" in out

    def test_parallel_sweep_with_manifest_and_resume(self, tmp_path,
                                                     capsys):
        manifest = tmp_path / "sweep.jsonl"
        argv = ["sweep", "--cycle", "SC03", "--repeats", "1",
                "--controllers", "rule-based", "--scenarios", "aux_spike",
                "--jobs", "2", "--retries", "1"]
        assert main(argv + ["--manifest", str(manifest)]) == 0
        first = capsys.readouterr().out
        assert manifest.exists()
        assert main(argv + ["--resume", str(manifest)]) == 0
        second = capsys.readouterr().out
        # The resumed sweep replays the manifest: identical table.
        assert second.splitlines()[-10:] == first.splitlines()[-10:]

    def test_zero_jobs_is_structured_error(self, capsys):
        assert main(["sweep", "--jobs", "0"]) == 2
        assert "jobs" in capsys.readouterr().err

    def test_resume_missing_manifest_is_structured_error(self, tmp_path,
                                                         capsys):
        assert main(["sweep",
                     "--resume", str(tmp_path / "missing.jsonl")]) == 2
        assert "does not exist" in capsys.readouterr().err

    def test_manifest_and_resume_conflict(self, tmp_path, capsys):
        assert main(["sweep", "--manifest", str(tmp_path / "a.jsonl"),
                     "--resume", str(tmp_path / "a.jsonl")]) == 2
        assert "mutually exclusive" in capsys.readouterr().err

    def test_unknown_controller_is_structured_error(self, capsys):
        assert main(["sweep", "--controllers", "warp-drive"]) == 2
        assert "unknown controller" in capsys.readouterr().err


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            main([])

    def test_rejects_unknown_variant(self):
        with pytest.raises(SystemExit):
            main(["train", "--variant", "nope"])


class TestGuardCommands:
    def test_evaluate_with_guard_prints_summary(self, capsys):
        assert main(["evaluate", "--cycle", "SC03", "--repeats", "1",
                     "--controller", "rule-based", "--guard"]) == 0
        out = capsys.readouterr().out
        assert "guard:" in out
        assert "final mode NOMINAL" in out

    def test_guard_report_healthy(self, capsys):
        assert main(["guard-report", "--cycle", "SC03", "--repeats", "1",
                     "--controller", "rule-based"]) == 0
        out = capsys.readouterr().out
        assert "safety report:" in out
        assert "time in mode:" in out
        assert "NOMINAL" in out

    def test_guard_report_with_faults(self, capsys):
        assert main(["guard-report", "--cycle", "SC03", "--repeats", "1",
                     "--controller", "rule-based",
                     "--faults", "limp_home"]) == 0
        out = capsys.readouterr().out
        assert "safety report:" in out

    def test_guarded_sweep_adds_mode_columns(self, capsys):
        assert main(["sweep", "--cycle", "SC03", "--repeats", "1",
                     "--controllers", "rule-based",
                     "--scenarios", "aux_spike", "--guard"]) == 0
        out = capsys.readouterr().out
        assert "mode_f" in out
        assert "NOMINAL" in out
