"""Tests of the thermostat (bang-bang) baseline controller."""

import numpy as np
import pytest

from repro.control import RuleBasedController, ThermostatConfig, ThermostatController
from repro.cycles import CycleSpec, synthesize
from repro.powertrain import PowertrainSolver
from repro.sim import Simulator, evaluate
from repro.vehicle import default_vehicle


@pytest.fixture(scope="module")
def solver():
    return PowertrainSolver(default_vehicle())


@pytest.fixture(scope="module")
def cycle():
    return synthesize(CycleSpec("th", duration=200, mean_speed_kmh=27.0,
                                max_speed_kmh=55.0, stop_count=3,
                                seed=51)).repeat(2)


class TestConfig:
    def test_defaults_valid(self):
        ThermostatConfig()

    def test_rejects_out_of_order_thresholds(self):
        with pytest.raises(ValueError):
            ThermostatConfig(soc_low=0.7, soc_high=0.5)

    def test_rejects_positive_charge_current(self):
        with pytest.raises(ValueError):
            ThermostatConfig(charge_current=10.0)


class TestHysteresis:
    def test_turns_on_below_low(self, solver):
        ctrl = ThermostatController(solver)
        ctrl.begin_episode()
        ctrl._update_thermostat(0.45)
        assert ctrl._charging

    def test_stays_on_until_high(self, solver):
        ctrl = ThermostatController(solver)
        ctrl.begin_episode()
        ctrl._update_thermostat(0.45)
        ctrl._update_thermostat(0.60)  # between thresholds: stay on
        assert ctrl._charging
        ctrl._update_thermostat(0.71)
        assert not ctrl._charging

    def test_stays_off_until_low(self, solver):
        ctrl = ThermostatController(solver)
        ctrl.begin_episode()
        ctrl._update_thermostat(0.60)
        assert not ctrl._charging

    def test_begin_episode_resets(self, solver):
        ctrl = ThermostatController(solver)
        ctrl._charging = True
        ctrl.begin_episode()
        assert not ctrl._charging


class TestBehaviour:
    def test_episode_runs_clean(self, solver, cycle):
        result = evaluate(Simulator(solver), ThermostatController(solver),
                          cycle)
        assert result.total_fuel > 0
        assert result.fallback_steps <= 3
        p = solver.params.battery
        assert np.all(result.soc >= p.soc_min - 0.02)

    def test_regen_during_braking(self, solver, cycle):
        result = evaluate(Simulator(solver), ThermostatController(solver),
                          cycle)
        braking = result.power_demand < -2000.0
        assert np.mean(result.current[braking] < 0.0) > 0.5

    def test_charges_when_low(self, solver):
        ctrl = ThermostatController(solver)
        ctrl.begin_episode()
        step = ctrl.act(15.0, 0.1, 0.45, dt=1.0)
        assert step.current < 0.0

    def test_ev_mode_when_high_soc_low_demand(self, solver):
        ctrl = ThermostatController(solver)
        ctrl.begin_episode()
        step = ctrl.act(8.0, 0.2, 0.75, dt=1.0)
        assert step.current > 0.0
        assert step.fuel_rate == 0.0

    def test_tuned_rules_beat_thermostat(self, solver, cycle):
        # The tuned rule-based baseline should not lose to bang-bang on the
        # joint learning reward (sanity anchor for the baseline ladder).
        sim = Simulator(solver)
        thermo = evaluate(sim, ThermostatController(solver), cycle)
        rules = evaluate(sim, RuleBasedController(solver), cycle)
        assert rules.total_reward >= thermo.total_reward - 10.0
