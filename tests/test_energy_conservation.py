"""Energy-conservation property tests across the whole powertrain.

First-law checks on every resolved operating point: no component may
output more energy than it takes in, and every conversion pays its
efficiency toll in the correct direction.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.powertrain import PowertrainSolver
from repro.vehicle import default_vehicle

_SOLVER = PowertrainSolver(default_vehicle())


class TestFirstLaw:
    @settings(max_examples=60, deadline=None)
    @given(st.floats(min_value=0.5, max_value=30.0),
           st.floats(min_value=-2.0, max_value=2.0),
           st.floats(min_value=-60.0, max_value=60.0),
           st.integers(min_value=0, max_value=4))
    def test_engine_never_exceeds_fuel_power(self, v, a, i, gear):
        pt = _SOLVER.evaluate(v, a, 0.6, i, gear, 600.0, dt=1.0)
        if pt.engine_torque > 0:
            brake_power = pt.engine_torque * pt.engine_speed
            fuel_power = pt.fuel_rate * _SOLVER.engine.fuel_energy_density
            assert brake_power <= fuel_power + 1e-6

    @settings(max_examples=60, deadline=None)
    @given(st.floats(min_value=0.5, max_value=30.0),
           st.floats(min_value=-2.0, max_value=2.0),
           st.floats(min_value=-60.0, max_value=60.0),
           st.integers(min_value=0, max_value=4))
    def test_motor_conversion_direction(self, v, a, i, gear):
        pt = _SOLVER.evaluate(v, a, 0.6, i, gear, 600.0, dt=1.0)
        mech = pt.motor_torque * pt.motor_speed
        elec = pt.battery_power - pt.aux_power
        if mech > 1.0:
            # Motoring: electrical input must exceed mechanical output.
            assert elec >= mech - 1e-6
        elif mech < -1.0 and pt.feasible:
            # Generating: electrical recovered must be less than mechanical
            # absorbed.
            assert elec >= mech - 1e-6
            assert abs(elec) <= abs(mech) + 1e-6

    @settings(max_examples=60, deadline=None)
    @given(st.floats(min_value=0.5, max_value=30.0),
           st.floats(min_value=0.0, max_value=1.5),
           st.floats(min_value=-60.0, max_value=60.0),
           st.integers(min_value=0, max_value=4))
    def test_wheel_power_never_exceeds_sources(self, v, a, i, gear):
        """Feasible motoring: wheel power <= engine brake power + EM
        mechanical power (the gear train only dissipates)."""
        pt = _SOLVER.evaluate(v, a, 0.6, i, gear, 600.0, dt=1.0)
        if not pt.feasible or pt.wheel_torque <= 0:
            return
        wheel_power = pt.wheel_torque * pt.wheel_speed
        sources = (pt.engine_torque * pt.engine_speed
                   + max(pt.motor_torque, 0.0) * pt.motor_speed
                   - min(pt.motor_torque, 0.0) * pt.motor_speed * 0.0)
        # Generating EM subtracts from the shaft; it cannot help the wheels.
        assert wheel_power <= sources + 1e-6

    @settings(max_examples=40, deadline=None)
    @given(st.floats(min_value=0.5, max_value=30.0),
           st.floats(min_value=-3.0, max_value=-0.1),
           st.integers(min_value=0, max_value=4))
    def test_regen_bounded_by_braking_power(self, v, a, gear):
        """No feasible braking point may charge the battery with more power
        than the vehicle surrenders at the wheels."""
        pt = _SOLVER.evaluate(v, a, 0.6, -60.0, gear, 600.0, dt=1.0)
        if pt.wheel_torque >= 0 or not pt.feasible:
            return
        braking_power = -pt.wheel_torque * pt.wheel_speed
        charging_power = max(-(pt.battery_power - pt.aux_power), 0.0)
        assert charging_power <= braking_power + 1e-6


class TestRoundTripLoss:
    def test_battery_round_trip_is_lossy(self):
        """Pushing energy into the pack and pulling it back must lose
        energy (resistive + coulombic losses)."""
        battery = _SOLVER.battery
        soc = 0.6
        i_chg = -20.0
        p_in = -float(battery.terminal_power(i_chg, soc))  # bus energy spent
        stored = -i_chg * battery.params.coulombic_efficiency  # Coulombs
        # Discharge the same Coulombs.
        i_dis = stored  # over one second
        p_out = float(battery.terminal_power(i_dis, soc))
        assert p_out < p_in

    def test_em_round_trip_is_lossy(self):
        motor = _SOLVER.motor
        speed = 400.0
        # Generate 5 kW into the bus, then motor it back out.
        t_gen = float(motor.torque_from_electrical_power(-5000.0, speed))
        mech_absorbed = abs(t_gen * speed)
        t_mot = float(motor.torque_from_electrical_power(5000.0, speed))
        mech_returned = t_mot * speed
        assert mech_returned < mech_absorbed
