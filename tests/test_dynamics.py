"""Tests of the longitudinal dynamics (paper Eq. 5-7)."""

import math

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.units import AIR_DENSITY, GRAVITY
from repro.vehicle.dynamics import VehicleDynamics
from repro.vehicle.params import BodyParams


@pytest.fixture
def dyn():
    return VehicleDynamics(BodyParams())


class TestRoadLoad:
    def test_standstill_flat_no_load(self, dyn):
        load = dyn.road_load(0.0, 0.0, 0.0)
        assert load.total == pytest.approx(0.0)

    def test_rolling_resistance_vanishes_at_standstill(self, dyn):
        load = dyn.road_load(0.0, 0.0)
        assert load.rolling == pytest.approx(0.0)

    def test_rolling_resistance_value(self, dyn):
        p = dyn.params
        load = dyn.road_load(10.0, 0.0)
        assert load.rolling == pytest.approx(
            p.mass * GRAVITY * p.rolling_resistance)

    def test_aero_drag_quadratic(self, dyn):
        l10 = dyn.road_load(10.0, 0.0)
        l20 = dyn.road_load(20.0, 0.0)
        assert l20.aerodynamic == pytest.approx(4.0 * l10.aerodynamic)

    def test_aero_drag_value_at_20ms(self, dyn):
        p = dyn.params
        expected = 0.5 * AIR_DENSITY * p.drag_coefficient * p.frontal_area * 400.0
        assert dyn.road_load(20.0, 0.0).aerodynamic == pytest.approx(expected)

    def test_inertial_term(self, dyn):
        assert dyn.road_load(10.0, 1.5).inertial == pytest.approx(
            dyn.params.mass * 1.5)

    def test_grade_force_sign(self, dyn):
        uphill = dyn.road_load(10.0, 0.0, math.radians(5.0))
        downhill = dyn.road_load(10.0, 0.0, -math.radians(5.0))
        assert uphill.grade > 0
        assert downhill.grade == pytest.approx(-uphill.grade)

    def test_grade_force_value(self, dyn):
        theta = math.radians(3.0)
        expected = dyn.params.mass * GRAVITY * math.sin(theta)
        assert dyn.road_load(10.0, 0.0, theta).grade == pytest.approx(expected)

    def test_broadcasts_over_arrays(self, dyn):
        speeds = np.array([0.0, 10.0, 20.0])
        load = dyn.road_load(speeds, 0.0)
        assert np.asarray(load.total).shape == (3,)


class TestWheelQuantities:
    def test_wheel_speed(self, dyn):
        assert dyn.wheel_speed(10.0) == pytest.approx(
            10.0 / dyn.params.wheel_radius)

    def test_wheel_torque_consistent_with_force(self, dyn):
        f = dyn.tractive_force(15.0, 0.5)
        assert dyn.wheel_torque(15.0, 0.5) == pytest.approx(
            f * dyn.params.wheel_radius)

    def test_power_demand_is_force_times_speed(self, dyn):
        f = dyn.tractive_force(15.0, 0.5)
        assert dyn.power_demand(15.0, 0.5) == pytest.approx(f * 15.0)

    def test_power_demand_equals_wheel_torque_times_speed(self, dyn):
        # Eq. 7: p_dem = F_TR v = T_wh omega_wh.
        t_wh = dyn.wheel_torque(12.0, 0.3)
        w_wh = dyn.wheel_speed(12.0)
        assert dyn.power_demand(12.0, 0.3) == pytest.approx(t_wh * w_wh)

    def test_braking_power_negative(self, dyn):
        assert dyn.power_demand(15.0, -2.0) < 0.0


class TestCoastdown:
    def test_coastdown_decelerates_on_flat(self, dyn):
        assert dyn.coastdown_deceleration(20.0) < 0.0

    def test_coastdown_magnitude_grows_with_speed(self, dyn):
        assert abs(dyn.coastdown_deceleration(30.0)) > abs(
            dyn.coastdown_deceleration(10.0))

    def test_coastdown_is_zero_force_solution(self, dyn):
        a = float(dyn.coastdown_deceleration(20.0))
        assert dyn.tractive_force(20.0, a) == pytest.approx(0.0, abs=1e-9)

    def test_steep_downhill_accelerates(self, dyn):
        assert dyn.coastdown_deceleration(5.0, -math.radians(10.0)) > 0.0


class TestProperties:
    @given(st.floats(min_value=0.0, max_value=50.0),
           st.floats(min_value=-3.0, max_value=3.0))
    def test_power_demand_sign_matches_force(self, v, a):
        dyn = VehicleDynamics(BodyParams())
        p = float(dyn.power_demand(v, a))
        f = float(dyn.tractive_force(v, a))
        if v > 0:
            assert math.copysign(1.0, p) == math.copysign(1.0, f) or p == 0.0
        else:
            assert p == pytest.approx(0.0)

    @given(st.floats(min_value=0.1, max_value=50.0))
    def test_total_load_increases_with_acceleration(self, v):
        dyn = VehicleDynamics(BodyParams())
        assert (dyn.tractive_force(v, 1.0)
                > dyn.tractive_force(v, 0.0)
                > dyn.tractive_force(v, -1.0))

    @given(st.floats(min_value=500.0, max_value=3000.0))
    def test_heavier_vehicle_needs_more_force(self, mass):
        light = VehicleDynamics(BodyParams(mass=mass))
        heavy = VehicleDynamics(BodyParams(mass=mass * 1.5))
        assert (heavy.tractive_force(10.0, 1.0)
                > light.tractive_force(10.0, 1.0))
