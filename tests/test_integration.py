"""End-to-end integration tests: the full stack on small budgets.

These are scaled-down versions of the benchmark experiments — small cycles
and few episodes — asserting the qualitative relationships the paper's
evaluation rests on, cheap enough for the regular test suite.
"""

import numpy as np
import pytest

from repro import quick_agent
from repro.control import ECMSController, RuleBasedController
from repro.cycles import CycleSpec, synthesize
from repro.powertrain import OperatingMode, PowertrainSolver
from repro.sim import Simulator, evaluate, train
from repro.vehicle import default_vehicle


@pytest.fixture(scope="module")
def city_cycle():
    return synthesize(CycleSpec("city", duration=240, mean_speed_kmh=26.0,
                                max_speed_kmh=55.0, stop_count=4,
                                seed=21)).repeat(2)


@pytest.fixture(scope="module")
def trained(city_cycle):
    controller, simulator = quick_agent(seed=3)
    run = train(simulator, controller, city_cycle, episodes=40)
    return controller, simulator, run


class TestTrainedAgentBehaviour:
    def test_soc_stays_in_window(self, trained, city_cycle):
        _, _, run = trained
        res = run.evaluation
        p = default_vehicle().battery
        assert np.all(res.soc >= p.soc_min - 0.02)
        assert np.all(res.soc <= p.soc_max + 0.02)

    def test_regen_happens_during_braking(self, trained):
        _, _, run = trained
        res = run.evaluation
        braking = res.power_demand < -2000.0
        assert np.any(braking)
        # Most hard-braking steps should charge the battery.
        charging = res.current[braking] < 0.0
        assert np.mean(charging) > 0.5

    def test_multiple_modes_used(self, trained):
        _, _, run = trained
        modes = set(run.evaluation.mode.tolist())
        assert int(OperatingMode.REGEN) in modes
        assert len(modes) >= 3

    def test_aux_power_reasonable(self, trained):
        _, _, run = trained
        solver_params = default_vehicle().auxiliary
        res = run.evaluation
        assert solver_params.min_power - 1 <= res.mean_aux_power
        assert res.mean_aux_power <= solver_params.max_power + 1

    def test_no_pathological_fallbacks(self, trained):
        _, _, run = trained
        assert run.evaluation.fallback_steps <= 0.02 * len(
            run.evaluation.fuel_rate)

    def test_training_reward_trend_improves(self, trained):
        _, _, run = trained
        curve = run.learning_curve
        early = np.mean(curve[:5])
        late = np.mean(curve[-5:])
        assert late >= early  # learning must not make things worse


class TestControllerOrdering:
    """The qualitative ordering the paper's evaluation depends on."""

    def test_rl_beats_rule_based_on_reward(self, trained, city_cycle):
        _, simulator, run = trained
        rule = evaluate(simulator, RuleBasedController(simulator.solver),
                        city_cycle)
        # On its training cycle, the trained joint controller must achieve
        # at least the rule-based cumulative learning reward.
        assert run.evaluation.total_reward >= rule.total_reward - 5.0

    def test_ecms_charge_sustaining(self, trained, city_cycle):
        _, simulator, _ = trained
        res = evaluate(simulator, ECMSController(simulator.solver),
                       city_cycle)
        assert abs(res.final_soc - 0.60) < 0.10

    def test_fuel_energy_accounting_sane(self, trained):
        _, _, run = trained
        res = run.evaluation
        # Fuel energy burned must exceed the net mechanical work done at
        # the wheels (conservation with losses).
        fuel_energy = res.total_fuel * 42_500.0
        positive_work = float(np.sum(np.maximum(res.power_demand, 0.0)))
        battery_energy = (res.initial_soc - res.final_soc) * \
            res.battery_capacity * res.nominal_voltage
        assert fuel_energy + max(battery_energy, 0.0) > 0.2 * positive_work


class TestPredictionEffect:
    def test_prediction_state_dimension_active(self):
        # The proposed agent must actually populate different prediction
        # levels while driving (otherwise Fig. 2 is vacuous).
        controller, simulator = quick_agent(seed=5)
        cycle = synthesize(CycleSpec("mix", duration=200,
                                     mean_speed_kmh=30.0,
                                     max_speed_kmh=70.0, stop_count=3,
                                     seed=9))
        agent = controller.agent
        levels = set()
        agent.begin_episode()
        soc = 0.6
        for v, a, g in cycle.steps():
            step = agent.act(v, a, soc, 1.0, g, learn=True)
            soc = step.soc_next
            levels.add(agent.quantizer(agent.predictor.predict()))
        assert len(levels) >= 2


class TestDeterminism:
    def test_same_seed_same_training(self, city_cycle):
        results = []
        for _ in range(2):
            controller, simulator = quick_agent(seed=17)
            run = train(simulator, controller, city_cycle, episodes=4)
            results.append(run.evaluation.total_fuel)
        assert results[0] == pytest.approx(results[1], abs=1e-9)

    def test_different_seed_different_exploration(self, city_cycle):
        fuels = []
        for seed in (1, 2):
            controller, simulator = quick_agent(seed=seed)
            run = train(simulator, controller, city_cycle, episodes=3)
            fuels.append(tuple(e.total_fuel for e in run.episodes))
        assert fuels[0] != fuels[1]
