"""Tests of the drive-cycle container, synthesis, statistics, and I/O."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.cycles import (
    CycleSpec,
    DriveCycle,
    STANDARD_SPECS,
    compute_stats,
    load_csv,
    save_csv,
    standard_cycle,
    synthesize,
)
from repro.cycles.stats import count_stops
from repro.errors import ConfigurationError
from repro.units import kmh_to_ms


class TestDriveCycle:
    def test_rejects_short_trace(self):
        with pytest.raises(ValueError):
            DriveCycle("x", np.array([1.0]))

    def test_rejects_negative_speed(self):
        with pytest.raises(ValueError):
            DriveCycle("x", np.array([1.0, -0.1, 0.0]))

    def test_rejects_bad_dt(self):
        with pytest.raises(ValueError):
            DriveCycle("x", np.array([0.0, 1.0]), dt=0.0)

    def test_rejects_mismatched_grades(self):
        with pytest.raises(ValueError):
            DriveCycle("x", np.zeros(5), grades=np.zeros(4))

    def test_duration_and_times(self):
        c = DriveCycle("x", np.zeros(11), dt=2.0)
        assert c.duration == pytest.approx(20.0)
        assert c.times[-1] == pytest.approx(20.0)

    def test_distance_trapezoidal(self):
        c = DriveCycle("x", np.array([0.0, 10.0, 10.0, 0.0]))
        assert c.distance == pytest.approx(5.0 + 10.0 + 5.0)

    def test_accelerations_forward_difference(self):
        c = DriveCycle("x", np.array([0.0, 2.0, 2.0, 0.0]))
        assert list(c.accelerations) == [2.0, 0.0, -2.0, 0.0]

    def test_steps_count(self):
        c = DriveCycle("x", np.zeros(10))
        assert len(list(c.steps())) == 9

    def test_steps_yield_speed_accel_grade(self):
        c = DriveCycle("x", np.array([0.0, 3.0, 3.0]),
                       grades=np.array([0.0, 0.01, 0.01]))
        v, a, g = next(iter(c.steps()))
        assert (v, a, g) == (0.0, 3.0, 0.0)

    def test_repeat_seamless(self):
        c = DriveCycle("x", np.array([0.0, 5.0, 2.0, 0.0]))
        r = c.repeat(3)
        assert len(r) == 4 + 3 + 3
        assert r.distance == pytest.approx(3 * c.distance)

    def test_repeat_rejects_zero(self):
        c = DriveCycle("x", np.zeros(4))
        with pytest.raises(ValueError):
            c.repeat(0)

    def test_slice(self):
        c = DriveCycle("x", np.arange(10.0))
        s = c.slice(2, 6)
        assert list(s.speeds) == [2.0, 3.0, 4.0, 5.0]

    def test_scaled(self):
        c = DriveCycle("x", np.array([0.0, 10.0, 0.0]))
        assert c.scaled(0.5).max_speed == pytest.approx(5.0)

    def test_scaled_rejects_negative(self):
        with pytest.raises(ValueError):
            DriveCycle("x", np.zeros(3)).scaled(-1.0)


class TestSynthesis:
    @pytest.mark.parametrize("name", sorted(STANDARD_SPECS))
    def test_standard_cycles_match_spec(self, name):
        spec = STANDARD_SPECS[name]
        cycle = standard_cycle(name)
        stats = compute_stats(cycle)
        assert stats.duration == pytest.approx(spec.duration, abs=1.5)
        assert stats.max_speed_kmh == pytest.approx(spec.max_speed_kmh,
                                                    rel=0.02)
        assert stats.mean_speed_kmh == pytest.approx(spec.mean_speed_kmh,
                                                     rel=0.10)
        assert stats.max_acceleration <= spec.accel_max * 1.25
        assert stats.max_deceleration <= spec.decel_max * 1.25

    def test_deterministic(self):
        a = standard_cycle("UDDS")
        b = standard_cycle("UDDS")
        assert np.array_equal(a.speeds, b.speeds)

    def test_starts_and_ends_at_rest(self):
        for name in STANDARD_SPECS:
            c = standard_cycle(name)
            assert c.speeds[0] == 0.0
            assert c.speeds[-1] == 0.0

    def test_unknown_cycle_raises(self):
        with pytest.raises(KeyError):
            standard_cycle("NOPE")

    def test_case_insensitive(self):
        assert standard_cycle("udds").name == "UDDS"

    def test_urban_more_transient_than_highway(self):
        urban = compute_stats(standard_cycle("UDDS"))
        highway = compute_stats(standard_cycle("HWFET"))
        assert urban.kinetic_intensity > 2.0 * highway.kinetic_intensity
        assert urban.stop_count > highway.stop_count

    def test_spec_validation(self):
        with pytest.raises(ValueError):
            CycleSpec("x", duration=30, mean_speed_kmh=30, max_speed_kmh=60,
                      stop_count=2)
        with pytest.raises(ValueError):
            CycleSpec("x", duration=600, mean_speed_kmh=70, max_speed_kmh=60,
                      stop_count=2)
        with pytest.raises(ValueError):
            CycleSpec("x", duration=600, mean_speed_kmh=30, max_speed_kmh=60,
                      stop_count=0)

    @settings(max_examples=10, deadline=None)
    @given(st.integers(min_value=1, max_value=15),
           st.integers(min_value=0, max_value=10_000))
    def test_synthesis_always_valid(self, stops, seed):
        spec = CycleSpec("rand", duration=400, mean_speed_kmh=25.0,
                         max_speed_kmh=70.0, stop_count=stops, seed=seed)
        cycle = synthesize(spec)
        assert np.all(cycle.speeds >= 0.0)
        assert cycle.max_speed <= kmh_to_ms(70.0) + 1e-9
        assert len(cycle) == 401


class TestStats:
    def test_count_stops(self):
        speeds = np.array([0, 5, 5, 0, 0, 7, 0, 3, 3], dtype=float)
        assert count_stops(speeds) == 2

    def test_no_stops_while_moving(self):
        assert count_stops(np.array([5.0, 6.0, 7.0])) == 0

    def test_idle_fraction(self):
        c = DriveCycle("x", np.array([0.0, 0.0, 5.0, 5.0]))
        assert compute_stats(c).idle_fraction == pytest.approx(0.5)


class TestCsvIO:
    def test_roundtrip(self, tmp_path):
        cycle = standard_cycle("SC03")
        path = tmp_path / "sc03.csv"
        save_csv(cycle, path)
        loaded = load_csv(path)
        assert loaded.name == "sc03"
        assert np.allclose(loaded.speeds, cycle.speeds, atol=1e-5)
        assert loaded.dt == pytest.approx(cycle.dt)

    def test_kmh_unit_conversion(self, tmp_path):
        path = tmp_path / "c.csv"
        path.write_text("time,speed\n0,36\n1,36\n2,0\n")
        cycle = load_csv(path, speed_unit="kmh")
        assert cycle.speeds[0] == pytest.approx(10.0)

    def test_rejects_unknown_unit(self, tmp_path):
        path = tmp_path / "c.csv"
        path.write_text("0,1\n1,1\n")
        with pytest.raises(ValueError):
            load_csv(path, speed_unit="furlongs")

    def test_rejects_nonuniform_sampling(self, tmp_path):
        path = tmp_path / "c.csv"
        path.write_text("0,1\n1,1\n3,1\n")
        with pytest.raises(ValueError):
            load_csv(path)

    def test_rejects_too_few_samples(self, tmp_path):
        path = tmp_path / "c.csv"
        path.write_text("time,speed\n0,1\n")
        with pytest.raises(ValueError):
            load_csv(path)

    def test_grade_column(self, tmp_path):
        path = tmp_path / "c.csv"
        path.write_text("0,5,0.01\n1,5,0.02\n")
        cycle = load_csv(path)
        assert cycle.grades[1] == pytest.approx(0.02)


class TestCsvValidation:
    """Malformed traces must fail at load time, naming the offending row."""

    def _load(self, tmp_path, body):
        path = tmp_path / "bad.csv"
        path.write_text(body)
        return lambda: load_csv(path)

    def test_rejects_nan_speed(self, tmp_path):
        load = self._load(tmp_path, "time,speed\n0,1.0\n1,nan\n2,1.0\n")
        with pytest.raises(ConfigurationError, match=r"bad\.csv:3.*not finite"):
            load()

    def test_rejects_negative_speed(self, tmp_path):
        load = self._load(tmp_path, "0,1.0\n1,-0.5\n2,1.0\n")
        with pytest.raises(ConfigurationError,
                           match=r"bad\.csv:2.*negative"):
            load()

    def test_rejects_nonmonotonic_time(self, tmp_path):
        load = self._load(tmp_path, "0,1.0\n1,1.0\n1,2.0\n")
        with pytest.raises(ConfigurationError,
                           match=r"bad\.csv:3.*does not increase"):
            load()

    def test_rejects_unparseable_speed(self, tmp_path):
        load = self._load(tmp_path, "0,1.0\n1,fast\n")
        with pytest.raises(ConfigurationError,
                           match=r"bad\.csv:2.*unparseable"):
            load()

    def test_rejects_unparseable_time_after_data(self, tmp_path):
        load = self._load(tmp_path, "0,1.0\noops,1.0\n")
        with pytest.raises(ConfigurationError,
                           match=r"bad\.csv:2.*unparseable time"):
            load()

    def test_rejects_missing_speed_column(self, tmp_path):
        load = self._load(tmp_path, "0,1.0\n1\n")
        with pytest.raises(ConfigurationError,
                           match=r"bad\.csv:2.*no speed column"):
            load()

    def test_rejects_nonfinite_grade(self, tmp_path):
        load = self._load(tmp_path, "0,1.0,0.0\n1,1.0,inf\n")
        with pytest.raises(ConfigurationError, match=r"bad\.csv:2"):
            load()

    def test_structured_errors_are_still_value_errors(self, tmp_path):
        # Callers of the pre-structured API caught ValueError; the
        # ConfigurationError hierarchy must not break them.
        load = self._load(tmp_path, "0,1.0\n1,-2.0\n")
        with pytest.raises(ValueError):
            load()
