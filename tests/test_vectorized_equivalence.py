"""Golden equivalence: the vectorized hot path vs the frozen seed solver.

The struct-of-arrays kernel (``repro.powertrain.solver``) must reproduce
the pre-refactor physics **bit-identically** — no tolerance.  The frozen
implementation lives in ``repro.powertrain.reference``:

* :class:`ReferencePowertrainSolver` — the seed batched path, verbatim;
* :class:`ScalarReferenceSolver` — the same physics one action at a time.

Covered here: randomized (speed, accel, SoC, grade) grids, full episodes
on every built-in cycle, guarded (:class:`SafetySupervisor`) runs, and
fault-scenario runs (plant + sensor faults).  Any mismatch in any trace
field is a regression in the optimised kernel, not an acceptable drift.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.control.rl_controller import RLController, build_rl_controller
from repro.cycles import STANDARD_SPECS, standard_cycle
from repro.faults.harness import FaultHarness
from repro.faults.scenarios import builtin_scenarios
from repro.powertrain import PowertrainSolver
from repro.powertrain.reference import (
    ReferencePowertrainSolver,
    ScalarReferenceSolver,
)
from repro.safety import SafetySupervisor
from repro.sim import Simulator
from repro.vehicle import default_vehicle

BATCH_FIELDS = (
    "feasible", "mode", "gear", "engine_speed", "engine_torque",
    "motor_speed", "motor_torque", "battery_current", "battery_power",
    "aux_power", "fuel_rate", "brake_torque", "meets_demand", "window_ok",
    "soc_next", "shortfall")

BATCH_SCALARS = ("power_demand", "wheel_speed", "wheel_torque")

EPISODE_FIELDS = (
    "speeds", "power_demand", "fuel_rate", "reward", "paper_reward", "soc",
    "current", "gear", "aux_power", "mode", "feasible", "shortfall")


def assert_batches_identical(fast, ref):
    for name in BATCH_FIELDS:
        a, b = getattr(fast, name), getattr(ref, name)
        assert np.array_equal(a, b), (
            f"BatchResult.{name} diverged: {a} vs {b}")
    for name in BATCH_SCALARS:
        assert float(getattr(fast, name)) == float(getattr(ref, name)), name


def assert_episodes_identical(fast, ref):
    for name in EPISODE_FIELDS:
        a, b = getattr(fast, name), getattr(ref, name)
        assert np.array_equal(a, b), f"EpisodeResult.{name} diverged"
    if ref.fault_active is None:
        assert fast.fault_active is None
    else:
        assert np.array_equal(fast.fault_active, ref.fault_active)


def random_state(rng):
    """One randomized driver demand, biased toward interesting regimes."""
    regime = rng.integers(4)
    if regime == 0:                       # standstill
        speed = 0.0
        accel = float(rng.uniform(-0.5, 0.5))
    elif regime == 1:                     # braking
        speed = float(rng.uniform(2.0, 30.0))
        accel = float(rng.uniform(-3.0, -0.2))
    else:                                 # cruising / accelerating
        speed = float(rng.uniform(0.5, 35.0))
        accel = float(rng.uniform(-0.5, 2.5))
    soc = float(rng.uniform(0.30, 0.90))
    grade = float(rng.choice([0.0, 0.0, rng.uniform(-0.08, 0.08)]))
    return speed, accel, soc, grade


def random_grid(rng, num_gears):
    n = int(rng.integers(1, 40))
    currents = rng.uniform(-90.0, 90.0, n)
    gears = rng.integers(0, num_gears, n)
    aux = rng.uniform(0.0, 2200.0, n)
    return currents, gears, aux


@pytest.fixture(scope="module")
def solvers():
    return (PowertrainSolver(default_vehicle()),
            ReferencePowertrainSolver(default_vehicle()))


class TestRandomizedGrids:
    def test_randomized_states_and_grids(self, solvers):
        fast, ref = solvers
        rng = np.random.default_rng(2024)
        num_gears = fast.transmission.num_gears
        for _ in range(80):
            speed, accel, soc, grade = random_state(rng)
            currents, gears, aux = random_grid(rng, num_gears)
            a = fast.evaluate_actions(speed, accel, soc, currents, gears,
                                      aux, 1.0, grade)
            b = ref.evaluate_actions(speed, accel, soc, currents, gears,
                                     aux, 1.0, grade)
            assert_batches_identical(a, b)

    def test_soc_window_edges(self, solvers):
        fast, ref = solvers
        battery = fast.params.battery
        rng = np.random.default_rng(7)
        num_gears = fast.transmission.num_gears
        for soc in (0.0, battery.soc_min, 0.5, battery.soc_max, 1.0):
            for _ in range(6):
                speed, accel, _, grade = random_state(rng)
                currents, gears, aux = random_grid(rng, num_gears)
                a = fast.evaluate_actions(speed, accel, soc, currents,
                                          gears, aux, 1.0, grade)
                b = ref.evaluate_actions(speed, accel, soc, currents,
                                         gears, aux, 1.0, grade)
                assert_batches_identical(a, b)

    def test_matches_scalar_reference(self):
        fast = PowertrainSolver(default_vehicle())
        scalar = ScalarReferenceSolver(default_vehicle())
        rng = np.random.default_rng(11)
        num_gears = fast.transmission.num_gears
        for _ in range(4):
            speed, accel, soc, grade = random_state(rng)
            currents, gears, aux = random_grid(rng, num_gears)
            a = fast.evaluate_actions(speed, accel, soc, currents, gears,
                                      aux, 1.0, grade)
            b = scalar.evaluate_actions(speed, accel, soc, currents, gears,
                                        aux, 1.0, grade)
            assert_batches_identical(a, b)

    def test_persistent_workspace_matches_throwaway(self, solvers):
        """evaluate_grid (reused buffers) == evaluate_actions (fresh)."""
        fast, _ = solvers
        rng = np.random.default_rng(3)
        num_gears = fast.transmission.num_gears
        currents, gears, aux = random_grid(rng, num_gears)
        ws = fast.workspace(currents, gears, aux)
        for _ in range(25):
            speed, accel, soc, grade = random_state(rng)
            a = fast.evaluate_grid(ws, speed, accel, soc, 1.0, grade)
            b = fast.evaluate_actions(speed, accel, soc, currents, gears,
                                      aux, 1.0, grade)
            assert_batches_identical(a, b)


def _episode(solver_cls, cycle, guard=False, faults=None, seed=5):
    solver = solver_cls(default_vehicle())
    simulator = Simulator(solver)
    controller = build_rl_controller(solver, variant="proposed", seed=seed)
    driver = (SafetySupervisor(controller, solver) if guard
              else controller)
    harness = (FaultHarness(solver, faults, seed=seed)
               if faults is not None else None)
    return simulator.run_episode(driver, cycle, learn=False, greedy=True,
                                 faults=harness)


@pytest.mark.parametrize("cycle_name", sorted(STANDARD_SPECS))
def test_full_cycle_episode_matches(cycle_name):
    """Greedy full-cycle drives are bit-identical on every built-in cycle."""
    cycle = standard_cycle(cycle_name)
    fast = _episode(PowertrainSolver, cycle)
    ref = _episode(ReferencePowertrainSolver, cycle)
    assert_episodes_identical(fast, ref)


def test_guarded_episode_matches():
    """SafetySupervisor-mediated drives stay bit-identical."""
    cycle = standard_cycle("nycc")
    fast = _episode(PowertrainSolver, cycle, guard=True)
    ref = _episode(ReferencePowertrainSolver, cycle, guard=True)
    assert_episodes_identical(fast, ref)
    assert (fast.safety is None) == (ref.safety is None)
    if fast.safety is not None:
        assert fast.safety.interventions == ref.safety.interventions
        assert fast.safety.final_mode == ref.safety.final_mode


@pytest.mark.parametrize("scenario_name", ["battery_fade", "noisy_sensors"])
def test_fault_scenario_episode_matches(scenario_name):
    """Degraded-mode drives (plant + sensor faults) stay bit-identical."""
    schedule = builtin_scenarios()[scenario_name].schedule
    cycle = standard_cycle("nycc")
    fast = _episode(PowertrainSolver, cycle, faults=schedule)
    ref = _episode(ReferencePowertrainSolver, cycle, faults=schedule)
    assert_episodes_identical(fast, ref)


def test_act_batch_matches_scalar_fallback():
    """The agent's vectorised probe == the base-class scalar fallback."""
    from repro.control.base import Controller

    def build():
        solver = PowertrainSolver(default_vehicle())
        return build_rl_controller(solver, variant="no_prediction", seed=9)

    a, b = build(), build()
    rng = np.random.default_rng(13)
    speeds = rng.uniform(0.0, 30.0, 12)
    accels = rng.uniform(-2.0, 2.0, 12)
    socs = rng.uniform(0.42, 0.78, 12)
    a.begin_episode()
    b.begin_episode()
    batched = a.act_batch(speeds, accels, socs, 1.0)
    scalar = Controller.act_batch(b, speeds, accels, socs, 1.0)
    assert batched == scalar
    assert isinstance(a, RLController)
