"""Tests of the velocity-based predictor (the paper's rejected alternative)."""

import pytest

from repro.prediction import VelocityPredictor
from repro.rl.agent import JointControlAgent
from repro.rl.exploration import EpsilonGreedy
from repro.powertrain import PowertrainSolver
from repro.vehicle import default_vehicle
from repro.vehicle.dynamics import VehicleDynamics
from repro.vehicle.params import BodyParams


@pytest.fixture
def dynamics():
    return VehicleDynamics(BodyParams())


class TestVelocityPredictor:
    def test_initial_prediction_zero(self, dynamics):
        p = VelocityPredictor(dynamics)
        assert p.predict() == pytest.approx(0.0)

    def test_converges_to_cruise_load(self, dynamics):
        p = VelocityPredictor(dynamics)
        for _ in range(100):
            p.update_velocity(20.0)
        expected = float(dynamics.power_demand(20.0, 0.0))
        assert p.predict() == pytest.approx(expected, rel=1e-3)

    def test_transients_invisible(self, dynamics):
        # The paper's point: a velocity average cannot express the demand
        # spike of an acceleration at constant-ish speed.
        p = VelocityPredictor(dynamics)
        for _ in range(100):
            p.update_velocity(15.0)
        steady = p.predict()
        accel_demand = float(dynamics.power_demand(15.0, 1.5))
        assert steady < 0.5 * accel_demand

    def test_update_shim_ignores_power(self, dynamics):
        p = VelocityPredictor(dynamics)
        p.update(50_000.0)  # must be a no-op
        assert p.predict() == pytest.approx(0.0)

    def test_reset(self, dynamics):
        p = VelocityPredictor(dynamics)
        p.update_velocity(20.0)
        p.reset()
        assert p.predict() == pytest.approx(0.0)

    def test_rejects_negative_speed(self, dynamics):
        p = VelocityPredictor(dynamics)
        with pytest.raises(ValueError):
            p.update_velocity(-1.0)

    def test_rejects_bad_alpha(self, dynamics):
        with pytest.raises(ValueError):
            VelocityPredictor(dynamics, learning_rate=0.0)


class TestAgentIntegration:
    def test_agent_feeds_velocity_channel(self):
        solver = PowertrainSolver(default_vehicle())
        predictor = VelocityPredictor(solver.dynamics)
        agent = JointControlAgent(solver, predictor=predictor,
                                  exploration=EpsilonGreedy(seed=0), seed=0)
        agent.begin_episode()
        for _ in range(30):
            agent.act(18.0, 0.1, 0.6, dt=1.0, learn=False, greedy=True)
        # After many steps at 18 m/s the prediction approaches that cruise
        # load rather than staying at zero.
        expected = float(solver.dynamics.power_demand(18.0, 0.0))
        assert predictor.predict() == pytest.approx(expected, rel=0.05)
