"""Tests of the learning-curve analytics in :mod:`repro.analysis.convergence`."""

import numpy as np
import pytest

from repro.analysis.convergence import (
    ConvergenceReport,
    analyze,
    converged_level,
    episodes_to_threshold,
    moving_average,
)


class TestMovingAverage:
    def test_window_one_is_identity(self):
        vals = [1.0, 2.0, 3.0]
        assert list(moving_average(vals, 1)) == vals

    def test_trailing_semantics(self):
        out = moving_average([0.0, 2.0, 4.0], window=2)
        assert list(out) == [0.0, 1.0, 3.0]

    def test_prefix_shorter_windows(self):
        out = moving_average([3.0, 3.0, 3.0, 3.0], window=10)
        assert np.allclose(out, 3.0)

    def test_rejects_bad_window(self):
        with pytest.raises(ValueError):
            moving_average([1.0], 0)

    def test_empty_ok(self):
        assert len(moving_average([], 3)) == 0


class TestConvergedLevel:
    def test_median_of_tail(self):
        vals = [0.0] * 75 + [10.0] * 25
        assert converged_level(vals, tail_fraction=0.25) == 10.0

    def test_robust_to_outlier(self):
        vals = [0.0] * 10 + [5.0, 5.0, 5.0, 5.0, 100.0]
        assert converged_level(vals, tail_fraction=0.33) == 5.0

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            converged_level([])

    def test_rejects_bad_fraction(self):
        with pytest.raises(ValueError):
            converged_level([1.0], tail_fraction=0.0)


class TestEpisodesToThreshold:
    def test_finds_crossing(self):
        vals = list(np.linspace(0.0, 10.0, 21))
        ep = episodes_to_threshold(vals, threshold=5.0, window=1)
        assert ep == 10

    def test_none_when_never_reached(self):
        assert episodes_to_threshold([0.0, 1.0], threshold=5.0) is None

    def test_smoothing_delays_crossing(self):
        vals = [0.0] * 5 + [10.0] * 5
        raw = episodes_to_threshold(vals, 9.0, window=1)
        smooth = episodes_to_threshold(vals, 9.0, window=5)
        assert smooth > raw


class TestAnalyze:
    def test_improving_curve(self):
        vals = list(np.linspace(-100.0, -50.0, 30))
        report = analyze(vals)
        assert isinstance(report, ConvergenceReport)
        assert report.improvement > 0
        assert report.episodes_to_90pct is not None
        assert report.final_level > report.first

    def test_flat_curve_no_improvement_episode(self):
        report = analyze([-10.0] * 20)
        assert report.improvement == pytest.approx(0.0)
        assert report.episodes_to_90pct is None

    def test_rejects_tiny_curve(self):
        with pytest.raises(ValueError):
            analyze([1.0])
