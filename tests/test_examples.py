"""Smoke tests: every example script must run end to end.

Each example is executed in-process with a tiny budget (monkeypatched
``sys.argv``) so the whole set stays fast while still exercising the real
public-API paths the examples demonstrate.
"""

import runpy
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"


def run_example(monkeypatch, capsys, script: str, *args: str) -> str:
    monkeypatch.setattr(sys, "argv", [script, *args])
    runpy.run_path(str(EXAMPLES / script), run_name="__main__")
    return capsys.readouterr().out


def test_quickstart(monkeypatch, capsys):
    out = run_example(monkeypatch, capsys, "quickstart.py",
                      "--episodes", "2", "--cycle", "SC03")
    assert "proposed RL" in out
    assert "rule-based" in out
    assert "MPG improvement" in out


def test_commute_training(monkeypatch, capsys):
    out = run_example(monkeypatch, capsys, "commute_training.py",
                      "--days", "5")
    assert "Greedy evaluation" in out
    assert "congestion 0.5" in out


def test_aux_comfort_tradeoff(monkeypatch, capsys):
    out = run_example(monkeypatch, capsys, "aux_comfort_tradeoff.py",
                      "--episodes", "2")
    assert "mean p_aux" in out
    assert "w" in out


def test_predictor_comparison(monkeypatch, capsys):
    out = run_example(monkeypatch, capsys, "predictor_comparison.py")
    assert "exponential (Eq. 12)" in out
    assert "rmse" in out


def test_custom_vehicle(monkeypatch, capsys):
    out = run_example(monkeypatch, capsys, "custom_vehicle.py",
                      "--episodes", "2")
    assert "SUV" in out
    assert "rule-based" in out


def test_generalization(monkeypatch, capsys):
    out = run_example(monkeypatch, capsys, "generalization.py",
                      "--training-trips", "3")
    assert "unseen trip" in out
    assert "HWFET" in out


def test_grade_profile(monkeypatch, capsys):
    out = run_example(monkeypatch, capsys, "grade_profile.py",
                      "--episodes", "2")
    assert "rolling hills" in out
    assert "climb" in out


def test_hev_vs_conventional(monkeypatch, capsys):
    out = run_example(monkeypatch, capsys, "hev_vs_conventional.py",
                      "--episodes", "2")
    assert "conventional" in out
    assert "regen share" in out
    assert "hybridisation" in out
