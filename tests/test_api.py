"""Tests of the top-level package API and the operating-mode classifier."""

import numpy as np
import pytest

import repro
from repro import quick_agent
from repro.control.rl_controller import RLController
from repro.powertrain.modes import OperatingMode, classify
from repro.sim import Simulator


class TestQuickAgent:
    def test_returns_controller_and_simulator(self):
        controller, simulator = quick_agent()
        assert isinstance(controller, RLController)
        assert isinstance(simulator, Simulator)

    def test_variant_forwarded(self):
        controller, _ = quick_agent(variant="baseline13")
        assert controller.agent.predictor is None

    def test_custom_params(self):
        from repro.vehicle import BodyParams, VehicleParams
        params = VehicleParams(body=BodyParams(mass=1800.0))
        _, simulator = quick_agent(params=params)
        assert simulator.solver.params.body.mass == 1800.0

    def test_version_string(self):
        assert repro.__version__.count(".") == 2


class TestModeClassifier:
    def test_ice_only(self):
        mode = classify(np.array([50.0]), np.array([0.0]), np.array([30.0]),
                        np.array([False]))
        assert mode[0] == OperatingMode.ICE_ONLY

    def test_em_only(self):
        mode = classify(np.array([0.0]), np.array([40.0]), np.array([30.0]),
                        np.array([False]))
        assert mode[0] == OperatingMode.EM_ONLY

    def test_hybrid(self):
        mode = classify(np.array([50.0]), np.array([40.0]), np.array([30.0]),
                        np.array([False]))
        assert mode[0] == OperatingMode.HYBRID

    def test_charging(self):
        mode = classify(np.array([50.0]), np.array([-20.0]), np.array([30.0]),
                        np.array([False]))
        assert mode[0] == OperatingMode.CHARGING

    def test_regen(self):
        mode = classify(np.array([0.0]), np.array([-20.0]), np.array([30.0]),
                        np.array([True]))
        assert mode[0] == OperatingMode.REGEN

    def test_standstill_is_idle(self):
        mode = classify(np.array([0.0]), np.array([0.0]), np.array([0.0]),
                        np.array([False]))
        assert mode[0] == OperatingMode.IDLE

    def test_vectorised(self):
        modes = classify(
            np.array([50.0, 0.0]), np.array([0.0, 40.0]),
            np.array([30.0, 30.0]), np.array([False, False]))
        assert list(modes) == [OperatingMode.ICE_ONLY, OperatingMode.EM_ONLY]
