"""Tests of the epsilon-greedy exploration policy (paper Section 4.3.4)."""

import numpy as np
import pytest

from repro.rl.exploration import EpsilonGreedy


class TestValidation:
    def test_rejects_bad_epsilon(self):
        with pytest.raises(ValueError):
            EpsilonGreedy(epsilon=1.5)

    def test_rejects_bad_decay(self):
        with pytest.raises(ValueError):
            EpsilonGreedy(decay=0.0)

    def test_rejects_floor_above_epsilon(self):
        with pytest.raises(ValueError):
            EpsilonGreedy(epsilon=0.1, epsilon_min=0.2)


class TestAnnealing:
    def test_decay_per_episode(self):
        e = EpsilonGreedy(epsilon=0.4, decay=0.5, epsilon_min=0.01)
        e.new_episode()
        assert e.epsilon == pytest.approx(0.2)

    def test_floor_respected(self):
        e = EpsilonGreedy(epsilon=0.4, decay=0.1, epsilon_min=0.05)
        for _ in range(10):
            e.new_episode()
        assert e.epsilon == pytest.approx(0.05)

    def test_reset_restores_initial(self):
        e = EpsilonGreedy(epsilon=0.4, decay=0.5)
        e.new_episode()
        e.reset()
        assert e.epsilon == pytest.approx(0.4)


class TestSelection:
    def test_greedy_mode_deterministic(self):
        e = EpsilonGreedy(epsilon=1.0, seed=0)
        q = np.array([1.0, 5.0, 3.0])
        for _ in range(20):
            assert e.select(q, greedy=True) == 1

    def test_never_selects_infeasible(self):
        e = EpsilonGreedy(epsilon=1.0, seed=0)  # maximum exploration
        q = np.array([1.0, 5.0, 3.0])
        feasible = np.array([True, False, True])
        for _ in range(100):
            assert e.select(q, feasible) != 1

    def test_explores_non_best_actions(self):
        e = EpsilonGreedy(epsilon=0.5, decay=1.0, seed=0)
        q = np.array([1.0, 5.0, 3.0])
        picks = {e.select(q) for _ in range(200)}
        assert picks == {0, 1, 2}

    def test_epsilon_zero_always_best(self):
        e = EpsilonGreedy(epsilon=0.0, epsilon_min=0.0, seed=0)
        q = np.array([1.0, 5.0, 3.0])
        assert all(e.select(q) == 1 for _ in range(50))

    def test_exploration_rate_statistical(self):
        # Paper: best action with prob 1 - eps, others uniformly.
        e = EpsilonGreedy(epsilon=0.3, decay=1.0, seed=1)
        q = np.array([1.0, 5.0, 3.0])
        picks = [e.select(q) for _ in range(4000)]
        best_rate = picks.count(1) / len(picks)
        assert best_rate == pytest.approx(0.7, abs=0.05)
        # Non-best actions split the epsilon mass roughly evenly.
        assert picks.count(0) == pytest.approx(picks.count(2), rel=0.35)

    def test_all_infeasible_falls_back_to_argmax(self):
        e = EpsilonGreedy(seed=0)
        q = np.array([1.0, 5.0, 3.0])
        assert e.select(q, np.zeros(3, dtype=bool)) == 1

    def test_single_feasible_action(self):
        e = EpsilonGreedy(epsilon=1.0, seed=0)
        q = np.array([1.0, 5.0, 3.0])
        feasible = np.array([False, False, True])
        assert all(e.select(q, feasible) == 2 for _ in range(30))

    def test_seeded_reproducibility(self):
        q = np.array([0.0, 1.0, 2.0, 3.0])
        a = EpsilonGreedy(epsilon=0.8, seed=9)
        b = EpsilonGreedy(epsilon=0.8, seed=9)
        assert [a.select(q) for _ in range(50)] == [
            b.select(q) for _ in range(50)]
