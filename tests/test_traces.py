"""Tests of the trace analytics in :mod:`repro.analysis.traces`."""

import numpy as np
import pytest

from repro.analysis.traces import (
    EnergyAccount,
    current_histogram,
    energy_account,
    engine_duty,
    gear_histogram,
    mode_share,
    soc_statistics,
)
from repro.control import RuleBasedController
from repro.cycles import CycleSpec, synthesize
from repro.powertrain import PowertrainSolver
from repro.sim import Simulator, evaluate
from repro.vehicle import default_vehicle


@pytest.fixture(scope="module")
def result():
    solver = PowertrainSolver(default_vehicle())
    cycle = synthesize(CycleSpec("t", duration=180, mean_speed_kmh=28.0,
                                 max_speed_kmh=60.0, stop_count=3, seed=31))
    return evaluate(Simulator(solver), RuleBasedController(solver), cycle)


class TestEnergyAccount:
    def test_all_quantities_nonnegative(self, result):
        acc = energy_account(result)
        assert acc.positive_wheel_work > 0
        assert acc.braking_energy > 0
        assert acc.fuel_energy > 0
        assert acc.battery_charge_energy >= 0
        assert acc.battery_discharge_energy >= 0
        assert acc.auxiliary_energy > 0

    def test_fuel_energy_consistent(self, result):
        acc = energy_account(result)
        assert acc.fuel_energy == pytest.approx(
            result.total_fuel * result.fuel_energy_density)

    def test_regen_fraction_bounded(self, result):
        acc = energy_account(result)
        assert 0.0 <= acc.regen_fraction <= 1.0

    def test_regen_recovers_some_braking_energy(self, result):
        acc = energy_account(result)
        assert acc.regen_fraction > 0.05

    def test_tank_to_wheel_efficiency_physical(self, result):
        acc = energy_account(result)
        # Must be positive but cannot beat the engine's peak efficiency by
        # much (battery round trips only lose energy).
        assert 0.02 < acc.tank_to_wheel_efficiency < 0.45

    def test_zero_braking_edge_case(self):
        acc = EnergyAccount(positive_wheel_work=1.0, braking_energy=0.0,
                            fuel_energy=1.0, battery_discharge_energy=0.0,
                            battery_charge_energy=0.0, auxiliary_energy=0.0)
        assert acc.regen_fraction == 0.0

    def test_zero_fuel_edge_case(self):
        acc = EnergyAccount(positive_wheel_work=1.0, braking_energy=0.0,
                            fuel_energy=0.0, battery_discharge_energy=0.0,
                            battery_charge_energy=0.0, auxiliary_energy=0.0)
        assert acc.tank_to_wheel_efficiency == 0.0


class TestModeShare:
    def test_fractions_sum_to_one(self, result):
        share = mode_share(result)
        assert sum(share.values()) == pytest.approx(1.0)

    def test_names_are_mode_names(self, result):
        share = mode_share(result)
        valid = {"IDLE", "ICE_ONLY", "EM_ONLY", "HYBRID", "CHARGING",
                 "REGEN"}
        assert set(share) <= valid


class TestHistograms:
    def test_gear_histogram_counts_moving_steps(self, result):
        h = gear_histogram(result, num_gears=5)
        moving = int(np.sum(np.asarray(result.speeds) > 0.1))
        assert int(h.counts.sum()) == moving
        assert len(h.counts) == 5

    def test_current_histogram_covers_all_steps(self, result):
        h = current_histogram(result)
        assert int(h.counts.sum()) == len(result.current)

    def test_fractions_normalised(self, result):
        h = current_histogram(result)
        assert h.fractions.sum() == pytest.approx(1.0)

    def test_empty_histogram_fractions(self):
        from repro.analysis.traces import Histogram
        h = Histogram(edges=np.array([0.0, 1.0]), counts=np.array([0]))
        assert h.fractions.sum() == 0.0


class TestSocStatistics:
    def test_bounds_consistent(self, result):
        stats = soc_statistics(result)
        assert stats["min"] <= stats["mean"] <= stats["max"]
        assert stats["swing"] == pytest.approx(stats["max"] - stats["min"])
        assert stats["final"] == pytest.approx(result.final_soc)

    def test_throughput_positive(self, result):
        assert soc_statistics(result)["throughput_fraction"] > 0.0


class TestEngineDuty:
    def test_on_fraction_bounded(self, result):
        duty = engine_duty(result)
        assert 0.0 < duty["on_fraction"] < 1.0

    def test_mean_rate_when_on_positive(self, result):
        duty = engine_duty(result)
        assert duty["mean_fuel_rate_on"] > 0.0

    def test_starts_counted(self, result):
        assert engine_duty(result)["starts"] >= 1
