"""Tests of the Q-table storage and bounded eligibility traces."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.rl.qtable import QTable
from repro.rl.traces import EligibilityTraces


class TestQTable:
    def test_dimensions(self):
        q = QTable(10, 4)
        assert q.num_states == 10
        assert q.num_actions == 4

    def test_rejects_bad_dimensions(self):
        with pytest.raises(ValueError):
            QTable(0, 4)

    def test_initial_value(self):
        q = QTable(3, 3, initial_value=-5.0)
        assert np.all(q.values == -5.0)

    def test_jittered_init_breaks_ties(self):
        rng = np.random.default_rng(0)
        q = QTable(4, 4, rng=rng)
        assert len(np.unique(q.values)) > 1

    def test_best_value_and_action(self):
        q = QTable(2, 3)
        q.values[0] = [1.0, 5.0, 3.0]
        assert q.best_value(0) == 5.0
        assert q.best_action(0) == 1

    def test_best_action_respects_mask(self):
        q = QTable(1, 3)
        q.values[0] = [1.0, 5.0, 3.0]
        mask = np.array([True, False, True])
        assert q.best_action(0, mask) == 2

    def test_best_action_empty_mask_falls_back(self):
        q = QTable(1, 3)
        q.values[0] = [1.0, 5.0, 3.0]
        assert q.best_action(0, np.zeros(3, dtype=bool)) == 1

    def test_row_is_view(self):
        q = QTable(2, 2)
        q.row(1)[0] = 9.0
        assert q.values[1, 0] == 9.0

    def test_save_load_roundtrip(self, tmp_path):
        q = QTable(5, 3, rng=np.random.default_rng(1))
        q.values[2, 1] = 42.0
        path = tmp_path / "q.npz"
        q.save(path)
        loaded = QTable.load(path)
        assert np.array_equal(loaded.values, q.values)

    def test_visited_fraction(self):
        q = QTable(4, 4)
        assert q.visited_fraction() == 0.0
        q.values[0, 0] = 1.0
        assert q.visited_fraction() == pytest.approx(1 / 16)


class TestEligibilityTraces:
    def test_visit_accumulates(self):
        t = EligibilityTraces(decay=0.5)
        t.visit(1, 2)
        t.visit(1, 2)
        assert t.get(1, 2) == pytest.approx(2.0)

    def test_decay_multiplies(self):
        t = EligibilityTraces(decay=0.5)
        t.visit(1, 2)
        t.decay()
        assert t.get(1, 2) == pytest.approx(0.5)

    def test_zero_decay_clears(self):
        t = EligibilityTraces(decay=0.0)
        t.visit(0, 0)
        t.decay()
        assert len(t) == 0

    def test_bounded_to_m_most_recent(self):
        t = EligibilityTraces(decay=0.9, max_entries=3)
        for s in range(5):
            t.visit(s, 0)
        assert len(t) == 3
        assert t.get(0, 0) == 0.0  # oldest dropped
        assert t.get(4, 0) == 1.0

    def test_revisit_moves_to_recent(self):
        t = EligibilityTraces(decay=0.9, max_entries=2)
        t.visit(0, 0)
        t.visit(1, 0)
        t.visit(0, 0)  # 0 becomes most recent again
        t.visit(2, 0)  # evicts 1, not 0
        assert t.get(0, 0) > 0.0
        assert t.get(1, 0) == 0.0

    def test_iteration_oldest_first(self):
        t = EligibilityTraces(decay=0.9)
        t.visit(0, 0)
        t.visit(1, 1)
        keys = [k for k, _ in t]
        assert keys == [(0, 0), (1, 1)]

    def test_clear(self):
        t = EligibilityTraces(decay=0.9)
        t.visit(0, 0)
        t.clear()
        assert len(t) == 0

    def test_rejects_bad_decay(self):
        with pytest.raises(ValueError):
            EligibilityTraces(decay=1.0)
        with pytest.raises(ValueError):
            EligibilityTraces(decay=-0.1)

    def test_rejects_zero_capacity(self):
        with pytest.raises(ValueError):
            EligibilityTraces(decay=0.5, max_entries=0)

    @given(st.lists(st.tuples(st.integers(0, 9), st.integers(0, 3)),
                    min_size=1, max_size=100))
    def test_eligibility_never_negative_and_bounded(self, visits):
        t = EligibilityTraces(decay=0.8, max_entries=16)
        for s, a in visits:
            t.visit(s, a)
            t.decay()
        for _, e in t:
            assert 0.0 <= e <= 1.0 / (1.0 - 0.8) + 1e-9
