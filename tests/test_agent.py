"""Tests of the joint control agent (paper Section 4.3, Eq. 15)."""

import numpy as np
import pytest

from repro.powertrain import PowertrainSolver
from repro.prediction import ExponentialPredictor
from repro.rl.agent import ActionSpaceConfig, JointControlAgent
from repro.rl.exploration import EpsilonGreedy
from repro.vehicle import default_vehicle


@pytest.fixture(scope="module")
def solver():
    return PowertrainSolver(default_vehicle())


def make_agent(solver, **kwargs):
    kwargs.setdefault("exploration", EpsilonGreedy(seed=0))
    return JointControlAgent(solver, seed=0, **kwargs)


class TestActionSpaceConfig:
    def test_defaults_valid(self):
        ActionSpaceConfig()

    def test_rejects_unsorted_levels(self):
        with pytest.raises(ValueError):
            ActionSpaceConfig(current_levels=(10.0, -10.0))

    def test_rejects_single_level(self):
        with pytest.raises(ValueError):
            ActionSpaceConfig(current_levels=(0.0,))

    def test_rejects_zero_aux_candidates(self):
        with pytest.raises(ValueError):
            ActionSpaceConfig(aux_candidates=0)


class TestActionGrid:
    def test_reduced_space_groups_by_current(self, solver):
        agent = make_agent(solver)
        assert agent.num_rl_actions == len(
            agent.action_config.current_levels)
        m = len(agent._grid_group) // agent.num_rl_actions
        expected = np.repeat(np.arange(agent.num_rl_actions), m)
        assert np.array_equal(agent._grid_group, expected)

    def test_full_space_one_group_per_primitive(self, solver):
        agent = make_agent(solver, action_config=ActionSpaceConfig(
            reduced=False))
        assert agent.num_rl_actions == len(agent._grid_currents)

    def test_grid_covers_cross_product(self, solver):
        agent = make_agent(solver)
        n_cur = len(agent.action_config.current_levels)
        n_gear = solver.transmission.num_gears
        n_aux = len(agent.aux_levels)
        assert len(agent._grid_currents) == n_cur * n_gear * n_aux

    def test_aux_grid_contains_preferred(self, solver):
        agent = make_agent(solver)
        preferred = solver.auxiliary.utility.argmax(
            solver.auxiliary.max_power)
        assert np.any(np.isclose(agent.aux_levels, preferred))

    def test_fixed_aux_single_level(self, solver):
        agent = make_agent(solver, action_config=ActionSpaceConfig(
            control_aux=False))
        assert len(agent.aux_levels) == 1

    def test_fixed_aux_custom_power(self, solver):
        agent = make_agent(solver, action_config=ActionSpaceConfig(
            control_aux=False, fixed_aux_power=900.0))
        assert agent.aux_levels[0] == pytest.approx(900.0)

    def test_prediction_adds_state_dimension(self, solver):
        without = make_agent(solver)
        with_pred = make_agent(solver, predictor=ExponentialPredictor())
        assert (with_pred.discretizer.num_states
                == 3 * without.discretizer.num_states)


class TestActing:
    def test_act_returns_executed_step(self, solver):
        agent = make_agent(solver)
        agent.begin_episode()
        step = agent.act(10.0, 0.2, 0.6, dt=1.0)
        assert step.fuel_rate >= 0.0
        assert 0.0 <= step.soc_next <= 1.0
        assert 0 <= step.rl_action < agent.num_rl_actions
        assert step.feasible

    def test_greedy_mode_repeatable(self, solver):
        agent = make_agent(solver)
        agent.begin_episode()
        a = agent.act(12.0, 0.3, 0.6, dt=1.0, learn=False, greedy=True)
        agent.begin_episode()
        b = agent.act(12.0, 0.3, 0.6, dt=1.0, learn=False, greedy=True)
        assert a.rl_action == b.rl_action
        assert a.fuel_rate == b.fuel_rate

    def test_learning_updates_qtable(self, solver):
        agent = make_agent(solver)
        agent.begin_episode()
        before = agent.learner.qtable.values.copy()
        agent.act(10.0, 0.2, 0.6, dt=1.0, learn=True)
        agent.act(10.5, 0.1, 0.6, dt=1.0, learn=True)  # completes pending
        assert not np.array_equal(agent.learner.qtable.values, before)

    def test_no_learning_in_eval_mode(self, solver):
        agent = make_agent(solver)
        agent.begin_episode()
        before = agent.learner.qtable.values.copy()
        agent.act(10.0, 0.2, 0.6, dt=1.0, learn=False, greedy=True)
        agent.act(10.5, 0.1, 0.6, dt=1.0, learn=False, greedy=True)
        agent.finish_episode(learn=False)
        assert np.array_equal(agent.learner.qtable.values, before)

    def test_finish_episode_applies_terminal_update(self, solver):
        agent = make_agent(solver)
        agent.begin_episode()
        agent.act(10.0, 0.2, 0.6, dt=1.0, learn=True)
        before = agent.learner.qtable.values.copy()
        agent.finish_episode(learn=True)
        assert not np.array_equal(agent.learner.qtable.values, before)

    def test_executed_step_consistent_with_solver(self, solver):
        agent = make_agent(solver)
        agent.begin_episode()
        step = agent.act(15.0, 0.3, 0.6, dt=1.0, learn=False, greedy=True)
        # Re-evaluating the executed primitive must reproduce the fuel rate.
        pt = solver.evaluate(15.0, 0.3, 0.6, step.current, step.gear,
                             step.aux_power, dt=1.0)
        # rel=1e-3: re-feeding the saturated current restarts the motor
        # model's fixed-point iteration from a different point, so exact
        # bit-equality is not expected.
        assert pt.fuel_rate == pytest.approx(step.fuel_rate, rel=1e-3)

    def test_braking_prefers_regen(self, solver):
        agent = make_agent(solver)
        # Teach nothing: even greedily on a jittered table, the inner
        # optimisation should produce a charging step under hard braking
        # for whatever current group is picked, because positive-current
        # groups saturate to regen anyway.
        agent.begin_episode()
        step = agent.act(15.0, -2.0, 0.6, dt=1.0, learn=False, greedy=True)
        assert step.current <= 0.5  # regen or at most aux-sustaining

    def test_aux_shedding_available(self, solver):
        agent = make_agent(solver)
        assert agent.aux_levels.min() <= solver.auxiliary.min_power + 1e-9
        assert agent.aux_levels.max() >= solver.auxiliary.max_power - 1e-9


class TestPredictionIntegration:
    def test_prediction_changes_state(self, solver):
        agent = make_agent(solver, predictor=ExponentialPredictor(
            learning_rate=1.0))
        agent.begin_episode()
        s_low = agent.observe_state(500.0, 10.0, 0.6)
        # Feed a huge measured demand; the prediction level must rise.
        agent.predictor.update(30_000.0)
        s_high = agent.observe_state(500.0, 10.0, 0.6)
        assert s_low != s_high

    def test_predictor_reset_between_episodes(self, solver):
        agent = make_agent(solver, predictor=ExponentialPredictor())
        agent.begin_episode()
        agent.act(20.0, 1.0, 0.6, dt=1.0)
        assert agent.predictor.predict() != 0.0
        agent.begin_episode()
        assert agent.predictor.predict() == 0.0
