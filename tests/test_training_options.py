"""Tests of training-loop options (exploring starts, seeding)."""

import pytest

from repro.control import RuleBasedController
from repro.control.rl_controller import build_rl_controller
from repro.cycles import CycleSpec, synthesize
from repro.powertrain import PowertrainSolver
from repro.sim import Simulator, train
from repro.vehicle import default_vehicle


@pytest.fixture(scope="module")
def cycle():
    return synthesize(CycleSpec("tr", duration=90, mean_speed_kmh=24.0,
                                max_speed_kmh=45.0, stop_count=1, seed=91))


class TestExploringStarts:
    def test_jittered_starts_vary(self, cycle):
        solver = PowertrainSolver(default_vehicle())
        run = train(Simulator(solver), RuleBasedController(solver), cycle,
                    episodes=6, initial_soc_jitter=0.1,
                    evaluate_after=False)
        starts = {e.initial_soc for e in run.episodes}
        assert len(starts) > 1

    def test_zero_jitter_fixed_start(self, cycle):
        solver = PowertrainSolver(default_vehicle())
        run = train(Simulator(solver), RuleBasedController(solver), cycle,
                    episodes=4, initial_soc_jitter=0.0,
                    evaluate_after=False)
        assert all(e.initial_soc == 0.60 for e in run.episodes)

    def test_starts_respect_window_margin(self, cycle):
        solver = PowertrainSolver(default_vehicle())
        p = solver.params.battery
        run = train(Simulator(solver), RuleBasedController(solver), cycle,
                    episodes=10, initial_soc=0.78, initial_soc_jitter=0.2,
                    evaluate_after=False)
        assert all(p.soc_min + 0.029 <= e.initial_soc <= p.soc_max - 0.029
                   for e in run.episodes)

    def test_evaluation_uses_nominal_start(self, cycle):
        solver = PowertrainSolver(default_vehicle())
        run = train(Simulator(solver), RuleBasedController(solver), cycle,
                    episodes=3, initial_soc=0.65, initial_soc_jitter=0.1)
        assert run.evaluation.initial_soc == 0.65

    def test_seed_reproducible(self, cycle):
        def starts(seed):
            solver = PowertrainSolver(default_vehicle())
            run = train(Simulator(solver), RuleBasedController(solver),
                        cycle, episodes=4, seed=seed, evaluate_after=False)
            return [e.initial_soc for e in run.episodes]

        assert starts(5) == starts(5)
        assert starts(5) != starts(6)

    def test_rejects_negative_jitter(self, cycle):
        solver = PowertrainSolver(default_vehicle())
        with pytest.raises(ValueError):
            train(Simulator(solver), RuleBasedController(solver), cycle,
                  episodes=1, initial_soc_jitter=-0.1)

    def test_rl_training_covers_soc_bins(self, cycle):
        # With exploring starts, the trained Q-table must be touched across
        # several SoC bins, not just around the nominal start.
        solver = PowertrainSolver(default_vehicle())
        controller = build_rl_controller(solver, seed=4)
        train(Simulator(solver), controller, cycle, episodes=12,
              initial_soc_jitter=0.15, evaluate_after=False)
        agent = controller.agent
        q = agent.learner.qtable.values
        touched_socs = set()
        for state in range(agent.discretizer.num_states):
            if abs(q[state]).max() > 1e-4:
                touched_socs.add(agent.discretizer.unravel(state)[2])
        assert len(touched_socs) >= 4
