"""Tests of the runtime safety supervisor (:mod:`repro.safety`)."""

import numpy as np
import pytest

from repro.control import RuleBasedController
from repro.control.base import Controller
from repro.control.rl_controller import build_rl_controller
from repro.cycles import CycleSpec, synthesize
from repro.errors import (ConfigurationError, NumericalError,
                          SafetyHaltError)
from repro.faults import FaultHarness, builtin_scenarios
from repro.powertrain import PowertrainSolver
from repro.rl.agent import ExecutedStep
from repro.safety import (
    AlarmLevel,
    FeasibilityEnvelope,
    HealthState,
    HealthStateMachine,
    InfeasibilityMonitor,
    QTableMonitor,
    RewardCollapseMonitor,
    SafetyLog,
    SafetySupervisor,
    SoCWindowMonitor,
    StepContext,
    SupervisorConfig,
)
from repro.sim import Simulator, evaluate, train
from repro.vehicle import default_vehicle


@pytest.fixture(scope="module")
def cycle():
    return synthesize(CycleSpec("guard", duration=120, mean_speed_kmh=25.0,
                                max_speed_kmh=50.0, stop_count=2, seed=7))


@pytest.fixture()
def solver():
    return PowertrainSolver(default_vehicle())


def _ctx(step=0, feasible=True, intervened=False, soc_outside=False,
         reward=-1.0, q_finite=None, q_max_abs=0.0):
    return StepContext(step=step, feasible=feasible, intervened=intervened,
                       soc_outside=soc_outside, reward=reward,
                       q_finite=q_finite, q_max_abs=q_max_abs)


class _ScriptedController(Controller):
    """Stub returning pre-built steps (and journaling the learn flags)."""

    def __init__(self, steps, error=None):
        self._steps = list(steps)
        self._error = error
        self.learn_flags = []
        self._i = 0

    def begin_episode(self):
        self._i = 0

    def act(self, speed, acceleration, soc, dt, grade=0.0, learn=True,
            greedy=False):
        if self._error is not None:
            raise self._error
        self.learn_flags.append(learn)
        step = self._steps[min(self._i, len(self._steps) - 1)]
        self._i += 1
        return step

    def finish_episode(self, learn=True):
        pass


def _step(current=0.0, gear=0, aux_power=None, soc_next=0.60, feasible=True,
          solver=None):
    if aux_power is None:
        aux_power = float(solver.auxiliary.min_power) if solver else 300.0
    return ExecutedStep(state=0, rl_action=0, current=current, gear=gear,
                        aux_power=aux_power, fuel_rate=0.5,
                        soc_next=soc_next, reward=-1.0, paper_reward=-1.0,
                        feasible=feasible, mode=0, power_demand=5000.0)


class TestHealthStateMachine:
    def test_escalation_requires_dwell(self):
        m = HealthStateMachine(escalate_after=3, recover_after=5)
        assert m.step(AlarmLevel.WARN, "w") is None
        assert m.step(AlarmLevel.WARN, "w") is None
        assert m.state is HealthState.NOMINAL
        transition = m.step(AlarmLevel.WARN, "w")
        assert transition == (HealthState.NOMINAL, HealthState.DEGRADED, "w")
        assert m.state is HealthState.DEGRADED

    def test_severe_escalates_one_level_at_a_time(self):
        m = HealthStateMachine(escalate_after=1, recover_after=5)
        assert m.step(AlarmLevel.SEVERE, "s")[1] is HealthState.DEGRADED
        assert m.step(AlarmLevel.SEVERE, "s")[1] is HealthState.LIMP_HOME
        # SEVERE demands LIMP_HOME, never HALT: the machine stays put.
        assert m.step(AlarmLevel.SEVERE, "s") is None
        assert m.state is HealthState.LIMP_HOME

    def test_fatal_halts_immediately_and_terminally(self):
        m = HealthStateMachine(escalate_after=10, recover_after=10)
        transition = m.step(AlarmLevel.FATAL, "nan")
        assert transition == (HealthState.NOMINAL, HealthState.HALT, "nan")
        assert m.step(AlarmLevel.OK, "") is None
        assert m.state is HealthState.HALT

    def test_recovery_hysteresis(self):
        m = HealthStateMachine(escalate_after=1, recover_after=3)
        m.step(AlarmLevel.WARN, "w")
        assert m.state is HealthState.DEGRADED
        assert m.step(AlarmLevel.OK, "") is None
        assert m.step(AlarmLevel.OK, "") is None
        transition = m.step(AlarmLevel.OK, "")
        assert transition[0] is HealthState.DEGRADED
        assert transition[1] is HealthState.NOMINAL
        assert "recovered" in transition[2]

    def test_matching_alarm_resets_clean_streak(self):
        m = HealthStateMachine(escalate_after=1, recover_after=2)
        m.step(AlarmLevel.WARN, "w")
        assert m.state is HealthState.DEGRADED
        m.step(AlarmLevel.OK, "")
        m.step(AlarmLevel.WARN, "w")  # still degraded: streak must restart
        m.step(AlarmLevel.OK, "")
        assert m.step(AlarmLevel.OK, "") is not None  # 2 clean in a row now
        assert m.state is HealthState.NOMINAL

    def test_force_is_monotone(self):
        m = HealthStateMachine()
        assert m.force(HealthState.LIMP_HOME, "crash") is not None
        assert m.force(HealthState.DEGRADED, "later") is None
        assert m.state is HealthState.LIMP_HOME

    def test_rejects_bad_dwell(self):
        with pytest.raises(ConfigurationError):
            HealthStateMachine(escalate_after=0)


class TestMonitors:
    def test_q_monitor_without_table_is_silent(self):
        assert QTableMonitor().observe(_ctx(q_finite=None)) == \
            (AlarmLevel.OK, "")

    def test_q_monitor_nan_is_fatal(self):
        level, _ = QTableMonitor().observe(_ctx(q_finite=False))
        assert level is AlarmLevel.FATAL

    def test_q_monitor_divergence_warns(self):
        monitor = QTableMonitor(divergence_threshold=100.0)
        level, detail = monitor.observe(_ctx(q_finite=True, q_max_abs=1e4))
        assert level is AlarmLevel.WARN and "diverging" in detail
        assert monitor.observe(_ctx(q_finite=True, q_max_abs=50.0)) == \
            (AlarmLevel.OK, "")

    def test_infeasibility_streak_and_reset(self):
        monitor = InfeasibilityMonitor(warn_after=2, severe_after=3)
        assert monitor.observe(_ctx(feasible=False))[0] is AlarmLevel.OK
        assert monitor.observe(_ctx(feasible=False))[0] is AlarmLevel.WARN
        assert monitor.observe(_ctx(intervened=True))[0] is AlarmLevel.SEVERE
        assert monitor.observe(_ctx())[0] is AlarmLevel.OK  # streak broken
        assert monitor.observe(_ctx(feasible=False))[0] is AlarmLevel.OK

    def test_soc_window_streak(self):
        monitor = SoCWindowMonitor(warn_after=2, severe_after=4)
        votes = [monitor.observe(_ctx(soc_outside=True))[0]
                 for _ in range(4)]
        assert votes == [AlarmLevel.OK, AlarmLevel.WARN, AlarmLevel.WARN,
                         AlarmLevel.SEVERE]
        assert monitor.observe(_ctx(soc_outside=False))[0] is AlarmLevel.OK

    def test_reward_collapse_fires_on_cliff(self):
        monitor = RewardCollapseMonitor(window=5, sigmas=4.0, min_history=40)
        rng = np.random.default_rng(0)
        for i in range(60):
            vote = monitor.observe(_ctx(step=i,
                                        reward=float(rng.normal(0.0, 1.0))))
            assert vote[0] is AlarmLevel.OK
        for i in range(5):
            vote = monitor.observe(_ctx(step=60 + i, reward=-100.0))
        assert vote[0] is AlarmLevel.WARN
        assert "collapsed" in vote[1]

    def test_reward_collapse_ignores_nonfinite(self):
        monitor = RewardCollapseMonitor(window=2, sigmas=1.0, min_history=3)
        assert monitor.observe(_ctx(reward=float("nan")))[0] is AlarmLevel.OK

    def test_monitor_parameter_validation(self):
        with pytest.raises(ConfigurationError):
            InfeasibilityMonitor(warn_after=5, severe_after=2)
        with pytest.raises(ConfigurationError):
            SoCWindowMonitor(warn_after=0)
        with pytest.raises(ConfigurationError):
            RewardCollapseMonitor(window=1)


class TestEnvelope:
    def test_clean_action_has_no_violations(self, solver):
        envelope = FeasibilityEnvelope(solver)
        assert envelope.check(0.0, 0, solver.auxiliary.min_power, 0.60) == []

    def test_violation_kinds(self, solver):
        envelope = FeasibilityEnvelope(solver)
        lim = envelope.limits()
        kinds = [k for k, _ in envelope.check(
            lim.max_current * 10, lim.num_gears + 3, lim.aux_max + 1e4,
            0.99)]
        assert kinds == ["current_limit", "gear_range", "aux_limit",
                        "soc_window"]

    def test_nonfinite_short_circuits(self, solver):
        envelope = FeasibilityEnvelope(solver)
        kinds = [k for k, _ in envelope.check(float("nan"), 0, 300.0, 0.6)]
        assert kinds == ["nonfinite_action"]

    def test_clamp_projects_and_sanitises(self, solver):
        envelope = FeasibilityEnvelope(solver)
        lim = envelope.limits()
        c, g, a = envelope.clamp(1e9, 99, float("inf"))
        assert c == pytest.approx(lim.max_current)
        assert g == lim.num_gears - 1
        assert a == pytest.approx(lim.aux_min)
        c, g, a = envelope.clamp(float("nan"), -5, -1e9)
        assert c == 0.0 and g == 0 and a == pytest.approx(lim.aux_min)

    def test_clamp_honours_derate(self, solver):
        envelope = FeasibilityEnvelope(solver)
        lim = envelope.limits()
        c, _, _ = envelope.clamp(lim.max_current, 0, 300.0, derate=0.5)
        assert c == pytest.approx(0.5 * lim.max_current)

    def test_resolve_returns_in_envelope_substitute(self, solver):
        envelope = FeasibilityEnvelope(solver)
        lim = envelope.limits()
        sub = envelope.resolve(speed=10.0, acceleration=0.0, soc=0.60,
                               dt=1.0, grade=0.0, current=1e5, gear=2,
                               aux_power=solver.auxiliary.min_power)
        assert abs(sub.current) <= lim.max_current + 1e-6
        assert np.isfinite(sub.fuel_rate) and np.isfinite(sub.soc_next)

    def test_limits_track_live_solver_mutation(self, solver):
        import dataclasses
        envelope = FeasibilityEnvelope(solver)
        before = envelope.limits().max_current
        battery = dataclasses.replace(solver.params.battery,
                                      max_current=before / 2)
        degraded = dataclasses.replace(solver.params, battery=battery)
        # The fault harness degrades the shared solver by re-running its
        # __init__ in place; the envelope must see the new limits live.
        PowertrainSolver.__init__(solver, degraded)
        assert envelope.limits().max_current == pytest.approx(before / 2)


class TestSafetyLog:
    def test_bounded_events_honest_counts(self):
        log = SafetyLog(max_events=2)
        from repro.safety import GuardEvent
        for i in range(4):
            log.record_event(GuardEvent(step=i, time=float(i),
                                        kind="current_limit", detail="x"))
        log.record_mode(0)
        report = log.report("NOMINAL")
        assert len(report.events) == 2
        assert report.events_dropped == 2
        assert report.interventions == 4

    def test_time_in_mode_lists_every_mode(self):
        log = SafetyLog()
        for mode_id in (0, 0, 1, 2):
            log.record_mode(mode_id)
        counts = log.report("LIMP_HOME").time_in_mode()
        assert counts == {"NOMINAL": 2, "DEGRADED": 1, "LIMP_HOME": 1,
                          "HALT": 0}

    def test_rejects_zero_capacity(self):
        with pytest.raises(ConfigurationError):
            SafetyLog(max_events=0)


class TestSupervisorUnit:
    def test_fallback_must_differ_from_controller(self, solver):
        controller = RuleBasedController(solver)
        with pytest.raises(ConfigurationError):
            SafetySupervisor(controller, solver, fallback=controller)

    def test_config_validation(self):
        with pytest.raises(ConfigurationError):
            SupervisorConfig(degraded_current_fraction=0.0)
        with pytest.raises(ConfigurationError):
            SupervisorConfig(escalate_after=0)
        with pytest.raises(ConfigurationError):
            SupervisorConfig(q_check_every=0)

    def test_clean_step_passes_through_unchanged(self, solver):
        scripted = _ScriptedController([_step(solver=solver)])
        supervisor = SafetySupervisor(scripted, solver)
        supervisor.begin_episode()
        returned = supervisor.act(10.0, 0.0, 0.60, 1.0)
        assert returned is scripted._steps[0]  # the very same object
        assert supervisor.mode is HealthState.NOMINAL

    def test_bad_action_is_substituted_and_journaled(self, solver):
        scripted = _ScriptedController([_step(current=1e5, solver=solver)])
        supervisor = SafetySupervisor(scripted, solver)
        supervisor.begin_episode()
        returned = supervisor.act(10.0, 0.0, 0.60, 1.0)
        lim = supervisor.envelope.limits()
        assert abs(returned.current) <= lim.max_current + 1e-6
        supervisor.finish_episode(learn=False)
        report = supervisor.episode_safety_report()
        assert report.interventions == 1
        assert report.events[0].kind == "current_limit"
        assert report.events[0].action_before["current"] == pytest.approx(1e5)

    def test_sustained_infeasibility_escalates_to_limp_home(self, solver):
        scripted = _ScriptedController(
            [_step(feasible=False, solver=solver)])
        config = SupervisorConfig(escalate_after=1, recover_after=1000,
                                  infeasible_warn_after=1,
                                  infeasible_severe_after=2)
        supervisor = SafetySupervisor(scripted, solver, config=config)
        supervisor.begin_episode()
        for _ in range(4):
            supervisor.act(10.0, 0.0, 0.60, 1.0)
        assert supervisor.mode is HealthState.LIMP_HOME
        supervisor.finish_episode(learn=False)
        report = supervisor.episode_safety_report()
        targets = [t.target for t in report.transitions]
        assert targets == ["DEGRADED", "LIMP_HOME"]
        # In LIMP_HOME the fallback acts: the scripted controller is idle.
        calls = len(scripted.learn_flags)
        supervisor.act(10.0, 0.0, 0.60, 1.0)
        assert len(scripted.learn_flags) == calls

    def test_degraded_freezes_learning(self, solver):
        scripted = _ScriptedController(
            [_step(feasible=False, solver=solver)] * 2
            + [_step(solver=solver)] * 10)
        config = SupervisorConfig(escalate_after=1, recover_after=1000,
                                  infeasible_warn_after=1,
                                  infeasible_severe_after=100)
        supervisor = SafetySupervisor(scripted, solver, config=config)
        supervisor.begin_episode()
        for _ in range(4):
            supervisor.act(10.0, 0.0, 0.60, 1.0, learn=True)
        assert supervisor.mode is HealthState.DEGRADED
        assert scripted.learn_flags[0] is True
        assert scripted.learn_flags[-1] is False

    def test_degraded_recovery_restores_nominal(self, solver):
        scripted = _ScriptedController(
            [_step(feasible=False, solver=solver)] * 2
            + [_step(solver=solver)] * 10)
        config = SupervisorConfig(escalate_after=1, recover_after=3,
                                  infeasible_warn_after=1,
                                  infeasible_severe_after=100)
        supervisor = SafetySupervisor(scripted, solver, config=config)
        supervisor.begin_episode()
        for _ in range(8):
            supervisor.act(10.0, 0.0, 0.60, 1.0)
        assert supervisor.mode is HealthState.NOMINAL
        supervisor.finish_episode(learn=False)
        transitions = supervisor.episode_safety_report().transitions
        assert transitions[-1].target == "NOMINAL"
        assert "recovered" in transitions[-1].reason

    def test_controller_error_engages_fallback_same_step(self, solver):
        scripted = _ScriptedController([], error=NumericalError("exploded"))
        supervisor = SafetySupervisor(scripted, solver)
        supervisor.begin_episode()
        returned = supervisor.act(10.0, 0.0, 0.60, 1.0)
        assert np.isfinite(returned.fuel_rate)
        assert supervisor.mode is HealthState.LIMP_HOME
        supervisor.finish_episode(learn=False)
        report = supervisor.episode_safety_report()
        kinds = [e.kind for e in report.events]
        assert "controller_error" in kinds and "fallback_engaged" in kinds
        assert any("NumericalError" in t.reason for t in report.transitions)

    def test_act_while_halted_raises(self, solver):
        supervisor = SafetySupervisor(RuleBasedController(solver), solver)
        supervisor.begin_episode()
        supervisor._machine.force(HealthState.HALT, "test")
        with pytest.raises(SafetyHaltError):
            supervisor.act(10.0, 0.0, 0.60, 1.0)


class TestSupervisorEndToEnd:
    def test_nominal_passthrough_is_bit_identical(self, cycle):
        def drive(guard):
            solver = PowertrainSolver(default_vehicle())
            controller = RuleBasedController(solver)
            if guard:
                controller = SafetySupervisor(controller, solver)
            return evaluate(Simulator(solver), controller, cycle)

        plain, guarded = drive(False), drive(True)
        assert np.array_equal(plain.fuel_rate, guarded.fuel_rate)
        assert np.array_equal(plain.soc, guarded.soc)
        assert np.array_equal(plain.current, guarded.current)
        report = guarded.safety
        assert report is not None
        assert report.interventions == 0
        assert report.final_mode == "NOMINAL"
        assert report.steps == len(plain.fuel_rate)
        assert plain.safety is None  # unguarded runs carry no report

    def test_poisoned_q_table_halts_structurally(self, cycle):
        solver = PowertrainSolver(default_vehicle())
        controller = build_rl_controller(solver, seed=3)
        simulator = Simulator(solver)
        train(simulator, controller, cycle, episodes=1,
              evaluate_after=False)
        controller.agent.learner.qtable.values[0, 0] = np.nan
        supervisor = SafetySupervisor(controller, solver)
        with pytest.raises(SafetyHaltError) as excinfo:
            evaluate(simulator, supervisor, cycle)
        err = excinfo.value
        assert err.report is not None and err.report.halted
        assert err.report.final_mode == "HALT"
        assert "Q-table" in err.reason

    @pytest.mark.parametrize("scenario_name",
                             sorted(builtin_scenarios().keys()))
    def test_any_builtin_fault_completes_or_halts(self, cycle,
                                                  scenario_name):
        """The robustness promise: under the supervisor, every built-in
        fault scenario either finishes the drive or raises a structured
        SafetyHaltError — never an unstructured exception, never NaN."""
        solver = PowertrainSolver(default_vehicle())
        simulator = Simulator(solver)
        supervisor = SafetySupervisor(RuleBasedController(solver), solver)
        scenario = builtin_scenarios()[scenario_name]
        harness = FaultHarness(solver, scenario.schedule, seed=11)
        try:
            result = evaluate(simulator, supervisor, cycle, faults=harness)
        except SafetyHaltError as err:
            assert err.report is not None and err.report.halted
            return
        assert result.safety is not None
        assert result.safety.steps == len(result.fuel_rate)
        for trace in (result.fuel_rate, result.soc, result.current,
                      result.reward):
            assert np.all(np.isfinite(trace))
        assert result.safety.final_mode in ("NOMINAL", "DEGRADED",
                                            "LIMP_HOME")
