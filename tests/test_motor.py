"""Tests of the electric machine model (paper Eq. 3-4)."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.vehicle.motor import Motor
from repro.vehicle.params import MotorParams


@pytest.fixture
def motor():
    return Motor(MotorParams())


class TestEnvelope:
    def test_constant_torque_below_base_speed(self, motor):
        p = motor.params
        assert float(motor.max_torque(p.base_speed * 0.5)) == pytest.approx(
            p.max_torque)

    def test_power_limited_above_base_speed(self, motor):
        p = motor.params
        speed = p.base_speed * 2.0
        assert float(motor.max_torque(speed)) == pytest.approx(
            p.max_power / speed)

    def test_zero_beyond_max_speed(self, motor):
        assert float(motor.max_torque(motor.params.max_speed + 1.0)) == 0.0

    def test_generating_envelope_symmetric(self, motor):
        speed = 300.0
        assert float(motor.min_torque(speed)) == pytest.approx(
            -float(motor.max_torque(speed)))

    def test_feasibility_both_quadrants(self, motor):
        assert bool(motor.is_feasible(50.0, 300.0))
        assert bool(motor.is_feasible(-50.0, 300.0))
        t_lim = float(motor.max_torque(300.0))
        assert not bool(motor.is_feasible(t_lim + 1.0, 300.0))
        assert not bool(motor.is_feasible(-t_lim - 1.0, 300.0))


class TestEfficiency:
    def test_bounded(self, motor):
        p = motor.params
        speeds = np.linspace(10.0, p.max_speed, 25)
        for s in speeds:
            t_lim = float(motor.max_torque(s))
            torques = np.linspace(-t_lim, t_lim, 21)
            eta = np.asarray(motor.efficiency(torques, s))
            assert np.all(eta >= p.efficiency_floor - 1e-12)
            assert np.all(eta <= p.peak_efficiency + 1e-12)

    def test_symmetric_in_torque_sign(self, motor):
        assert float(motor.efficiency(60.0, 300.0)) == pytest.approx(
            float(motor.efficiency(-60.0, 300.0)))

    def test_peak_near_sweet_spot(self, motor):
        p = motor.params
        speed = p.optimal_speed_fraction * p.max_speed
        torque = p.optimal_torque_fraction * float(motor.max_torque(speed))
        assert float(motor.efficiency(torque, speed)) == pytest.approx(
            p.peak_efficiency, rel=1e-6)


class TestElectricalPower:
    def test_motoring_draws_more_than_mechanical(self, motor):
        torque, speed = 60.0, 300.0
        mech = torque * speed
        elec = float(motor.electrical_power(torque, speed))
        assert elec > mech

    def test_generating_returns_less_than_mechanical(self, motor):
        torque, speed = -60.0, 300.0
        mech = torque * speed  # negative
        elec = float(motor.electrical_power(torque, speed))
        assert mech < elec < 0.0

    def test_zero_torque_zero_power(self, motor):
        assert float(motor.electrical_power(0.0, 300.0)) == pytest.approx(0.0)

    def test_eq3_motoring_identity(self, motor):
        # Eq. 3 motoring: eta = T omega / P_electrical.
        torque, speed = 45.0, 250.0
        elec = float(motor.electrical_power(torque, speed))
        eta = float(motor.efficiency(torque, speed))
        assert torque * speed / elec == pytest.approx(eta, rel=1e-9)

    def test_eq3_generating_identity(self, motor):
        # Eq. 3 generating: eta = P_electrical / (T omega).
        torque, speed = -45.0, 250.0
        elec = float(motor.electrical_power(torque, speed))
        eta = float(motor.efficiency(torque, speed))
        assert elec / (torque * speed) == pytest.approx(eta, rel=1e-9)


class TestPowerInversion:
    @given(st.floats(min_value=-20_000.0, max_value=20_000.0),
           st.floats(min_value=50.0, max_value=900.0))
    def test_roundtrip(self, power, speed):
        motor = Motor(MotorParams())
        torque = float(motor.torque_from_electrical_power(power, speed))
        if abs(torque) < float(motor.max_torque(speed)):
            back = float(motor.electrical_power(torque, speed))
            # 3%: the fixed-point iteration is non-smooth at the efficiency
            # floor, where a few sweeps land within a few percent.
            assert back == pytest.approx(power, rel=3e-2, abs=5.0)

    def test_zero_speed_transmits_nothing(self, motor):
        assert float(motor.torque_from_electrical_power(5000.0, 0.0)) == 0.0

    def test_sign_preserved(self, motor):
        assert float(motor.torque_from_electrical_power(5000.0, 300.0)) > 0
        assert float(motor.torque_from_electrical_power(-5000.0, 300.0)) < 0

    def test_round_trip_loss_positive(self, motor):
        # Pushing energy through the machine twice must lose energy.
        speed = 300.0
        t_gen = float(motor.torque_from_electrical_power(-5000.0, speed))
        mech_in = abs(t_gen * speed)
        elec_out = 5000.0
        assert mech_in > elec_out
