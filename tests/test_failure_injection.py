"""Failure-injection tests: pathological inputs must degrade gracefully.

The simulator's promise is that *something* physically sensible executes on
every step, no matter how hostile the drive profile or battery state — the
fallback machinery absorbs infeasible demands instead of crashing or
producing unphysical outputs.  The fault subsystem extends the promise to
deliberately degraded vehicles: every fault model, schedule, and the
harness itself must keep episodes finite and leave the solver healthy
afterwards, the numerical watchdog must trip loudly on non-finite values,
and a killed-and-resumed training run must replay bit-identically.
"""

import numpy as np
import pytest

from repro.control import (
    ECMSController,
    RuleBasedController,
    ThermostatController,
    build_rl_controller,
)
from repro.control.base import Controller
from repro.cycles import DriveCycle
from repro.errors import (
    ConfigurationError,
    FaultScenarioError,
    NumericalError,
)
from repro.faults import (
    AuxLoadSpike,
    BatteryFade,
    EnginePowerLoss,
    FaultHarness,
    FaultSchedule,
    MotorDerating,
    ScheduledFault,
    SensorFault,
    builtin_scenarios,
    get_scenario,
    load_scenario,
    save_scenario,
)
from repro.powertrain import PowertrainSolver
from repro.rl.agent import ExecutedStep
from repro.sim import Simulator, train
from repro.vehicle import default_vehicle


@pytest.fixture(scope="module")
def solver():
    return PowertrainSolver(default_vehicle())


def brutal_cycle() -> DriveCycle:
    """A cycle with accelerations beyond the powertrain's ability."""
    speeds = np.array([0.0, 4.0, 12.0, 22.0, 30.0, 34.0, 20.0, 4.0, 0.0,
                       0.0, 8.0, 18.0, 28.0, 34.0, 16.0, 0.0])
    return DriveCycle("brutal", speeds)


def crawling_cycle() -> DriveCycle:
    """Low-speed stop-and-go where the engine cannot couple in any gear."""
    speeds = np.tile(np.array([0.0, 0.6, 1.2, 0.8, 0.3, 0.0]), 10)
    return DriveCycle("crawl", speeds)


class TestBrutalDemands:
    @pytest.mark.parametrize("make", [
        RuleBasedController, ECMSController, ThermostatController,
        lambda s: build_rl_controller(s, seed=1),
    ])
    def test_every_controller_survives(self, solver, make):
        controller = make(solver)
        result = Simulator(solver).run_episode(controller, brutal_cycle())
        # The run completes, fuel stays physical, SoC stays in [0, 1].
        assert np.all(result.fuel_rate >= 0.0)
        assert np.all((result.soc >= 0.0) & (result.soc <= 1.0))
        # Infeasible steps are marked, not hidden.
        assert result.fallback_steps >= 1

    def test_fallback_currents_physical(self, solver):
        result = Simulator(solver).run_episode(
            RuleBasedController(solver), brutal_cycle())
        imax = solver.params.battery.max_current
        assert np.all(np.abs(result.current) <= imax + 1e-6)


class TestCrawl:
    def test_ev_only_operation(self, solver):
        result = Simulator(solver).run_episode(
            RuleBasedController(solver), crawling_cycle(), initial_soc=0.7)
        # The engine cannot couple below idle speed in any gear: no fuel.
        assert result.total_fuel == pytest.approx(0.0)
        assert result.final_soc < 0.7  # aux + traction drain the pack


class TestBoundarySoc:
    def test_start_at_window_floor(self, solver):
        result = Simulator(solver).run_episode(
            RuleBasedController(solver), brutal_cycle(),
            initial_soc=solver.params.battery.soc_min)
        assert np.all(result.soc >= solver.params.battery.soc_min - 0.02)

    def test_start_at_window_ceiling(self, solver):
        result = Simulator(solver).run_episode(
            RuleBasedController(solver), brutal_cycle(),
            initial_soc=solver.params.battery.soc_max)
        assert np.all(result.soc <= solver.params.battery.soc_max + 0.02)

    def test_rl_agent_at_floor_never_deadlocks(self, solver):
        controller = build_rl_controller(solver, seed=2)
        cycle = crawling_cycle()
        result = Simulator(solver).run_episode(
            controller, cycle, initial_soc=solver.params.battery.soc_min)
        assert len(result.fuel_rate) == len(cycle) - 1


class TestDegenerateCycles:
    def test_all_idle_cycle(self, solver):
        cycle = DriveCycle("parked", np.zeros(30))
        result = Simulator(solver).run_episode(
            RuleBasedController(solver), cycle)
        assert result.total_fuel == 0.0
        assert result.distance == 0.0
        # Auxiliaries keep draining the pack while parked.
        assert result.final_soc < result.initial_soc

    def test_constant_speed_cycle(self, solver):
        cycle = DriveCycle("cruise", np.full(60, 20.0))
        result = Simulator(solver).run_episode(
            RuleBasedController(solver), cycle)
        assert result.total_fuel > 0.0
        assert result.fallback_steps == 0


# --------------------------------------------------------- fault injection ---

@pytest.fixture()
def fresh_solver():
    """Function-scoped solver: fault tests mutate it in place."""
    return PowertrainSolver(default_vehicle())


def gentle_cycle(steps: int = 60) -> DriveCycle:
    """A mild drive the powertrain can always serve, even degraded."""
    half = steps // 2
    speeds = np.concatenate([np.linspace(0.0, 12.0, half),
                             np.linspace(12.0, 0.0, steps - half)])
    return DriveCycle("gentle", speeds)


class TestPlantFaultModels:
    def test_severity_zero_is_identity(self):
        params = default_vehicle()
        for fault in (BatteryFade(), MotorDerating(), EnginePowerLoss()):
            assert fault.apply(params, 0.0) == params

    def test_battery_fade_scales_capacity_and_resistance(self):
        params = default_vehicle()
        fault = BatteryFade(capacity_loss=0.2, resistance_growth=0.5)
        degraded = fault.apply(params, 1.0).battery
        base = params.battery
        assert degraded.capacity == pytest.approx(0.8 * base.capacity)
        assert degraded.discharge_resistance == pytest.approx(
            1.5 * base.discharge_resistance)
        assert degraded.charge_resistance == pytest.approx(
            1.5 * base.charge_resistance)
        # Half severity degrades half as far.
        half = fault.apply(params, 0.5).battery
        assert half.capacity == pytest.approx(0.9 * base.capacity)

    def test_motor_and_engine_derating(self):
        params = default_vehicle()
        motor = MotorDerating(power_derate=0.4, torque_derate=0.3).apply(
            params, 1.0).motor
        assert motor.max_power == pytest.approx(0.6 * params.motor.max_power)
        assert motor.max_torque == pytest.approx(0.7 * params.motor.max_torque)
        engine = EnginePowerLoss(power_loss=0.25).apply(params, 1.0).engine
        assert engine.max_power == pytest.approx(
            0.75 * params.engine.max_power)

    def test_plant_faults_compose_and_do_not_mutate(self):
        params = default_vehicle()
        degraded = MotorDerating(power_derate=0.5).apply(
            BatteryFade(capacity_loss=0.1).apply(params, 1.0), 1.0)
        assert degraded.battery.capacity < params.battery.capacity
        assert degraded.motor.max_power < params.motor.max_power
        assert params == default_vehicle()  # inputs untouched

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ConfigurationError):
            BatteryFade(capacity_loss=1.5)
        with pytest.raises(ConfigurationError):
            SensorFault(target="fuel")
        with pytest.raises(ConfigurationError):
            AuxLoadSpike(extra_power=-1.0)


class TestSchedule:
    def test_ramp_profile(self):
        entry = ScheduledFault(BatteryFade(), start=10.0, end=100.0,
                               ramp=20.0)
        assert entry.severity(0.0) == 0.0
        assert entry.severity(10.0) == 0.0  # ramp starts from zero
        assert entry.severity(20.0) == pytest.approx(0.5)
        assert entry.severity(30.0) == 1.0
        assert entry.severity(60.0) == 1.0
        assert entry.severity(100.0) == 0.0  # cleared at end
        assert entry.severity(200.0) == 0.0

    def test_step_activation_without_ramp(self):
        entry = ScheduledFault(MotorDerating(), start=5.0)
        assert entry.severity(4.99) == 0.0
        assert entry.severity(5.0) == 1.0

    def test_bad_timing_rejected(self):
        with pytest.raises(FaultScenarioError):
            ScheduledFault(BatteryFade(), start=-1.0)
        with pytest.raises(FaultScenarioError):
            ScheduledFault(BatteryFade(), start=10.0, end=10.0)
        with pytest.raises(FaultScenarioError):
            FaultSchedule([BatteryFade()])  # unwrapped model

    def test_plant_signature_ignores_signal_faults(self):
        schedule = FaultSchedule([
            ScheduledFault(BatteryFade(), start=0.0),
            ScheduledFault(SensorFault(target="soc", noise_std=0.01),
                           start=0.0),
        ])
        assert len(schedule.plant_signature(1.0)) == 1
        assert schedule.active(1.0)


class TestSignalFaultModels:
    def test_bias_and_noise_scale_with_severity(self):
        fault = SensorFault(target="speed", bias=2.0)
        rng = np.random.default_rng(0)
        observed, held = fault.distort(10.0, 0.5, rng, None)
        assert observed == pytest.approx(11.0)
        assert held == 10.0
        # Severity zero is transparent.
        assert fault.distort(10.0, 0.0, rng, None)[0] == 10.0

    def test_dropout_holds_last_sample(self):
        fault = SensorFault(target="soc", dropout=1.0)
        rng = np.random.default_rng(0)
        first, held = fault.distort(0.6, 1.0, rng, None)
        assert first == 0.6  # nothing to hold yet
        stale, _ = fault.distort(0.4, 1.0, rng, held)
        assert stale == 0.6  # certain dropout: stale value served

    def test_aux_spike_scales_and_clips(self):
        spike = AuxLoadSpike(extra_power=800.0)
        assert spike.extra_load(0.0) == 0.0
        assert spike.extra_load(0.5) == pytest.approx(400.0)
        assert spike.extra_load(2.0) == pytest.approx(800.0)


class TestHarnessMidCycle:
    def test_mid_cycle_activation_and_restore(self, fresh_solver):
        base_capacity = fresh_solver.params.battery.capacity
        schedule = FaultSchedule([ScheduledFault(
            BatteryFade(capacity_loss=0.3), start=20.0)])
        harness = FaultHarness(fresh_solver, schedule, seed=0)
        cycle = gentle_cycle(60)
        result = Simulator(fresh_solver).run_episode(
            RuleBasedController(fresh_solver), cycle, faults=harness)
        # The fault struck exactly at its scheduled step.
        assert not result.fault_active[:20].any()
        assert result.fault_active[20:].all()
        assert harness.activations == 1
        # SoC is continuous across the capacity change and traces finite.
        assert np.all(np.isfinite(result.soc))
        assert np.max(np.abs(np.diff(result.soc))) < 0.02
        # The solver is healthy again after the episode.
        assert fresh_solver.params.battery.capacity == base_capacity

    def test_schedule_accepted_directly(self, fresh_solver):
        schedule = FaultSchedule([ScheduledFault(
            MotorDerating(power_derate=0.5), start=0.0)])
        result = Simulator(fresh_solver).run_episode(
            RuleBasedController(fresh_solver), gentle_cycle(30),
            faults=schedule)
        assert result.faulted_steps == 29

    def test_derated_motor_actually_bites(self, fresh_solver):
        """Full-severity EM derating must change the executed drive.

        On a demanding cycle the engine runs wide open either way, so the
        EM's lost contribution shows up in the battery current trace (and
        the pack drains less), not necessarily in fuel.
        """
        healthy = Simulator(fresh_solver).run_episode(
            RuleBasedController(fresh_solver), brutal_cycle())
        schedule = FaultSchedule([ScheduledFault(
            MotorDerating(power_derate=0.8, torque_derate=0.8), start=0.0)])
        degraded = Simulator(fresh_solver).run_episode(
            RuleBasedController(fresh_solver), brutal_cycle(),
            faults=schedule)
        assert not np.allclose(degraded.current, healthy.current)
        assert np.max(np.abs(degraded.current)) < np.max(
            np.abs(healthy.current))

    def test_harness_bound_elsewhere_rejected(self, fresh_solver):
        other = PowertrainSolver(default_vehicle())
        harness = FaultHarness(other, FaultSchedule([ScheduledFault(
            BatteryFade(), start=0.0)]))
        with pytest.raises(ConfigurationError):
            Simulator(fresh_solver).run_episode(
                RuleBasedController(fresh_solver), gentle_cycle(10),
                faults=harness)


class _NaNController(Controller):
    """Misbehaving controller: emits a NaN current after a few steps."""

    def __init__(self, poison_after: int = 5):
        self._poison_after = poison_after
        self._step = 0

    def begin_episode(self) -> None:
        self._step = 0

    def act(self, speed, acceleration, soc, dt, grade=0.0, learn=True,
            greedy=False) -> ExecutedStep:
        self._step += 1
        current = float("nan") if self._step > self._poison_after else 0.0
        return ExecutedStep(state=0, rl_action=0, current=current, gear=0,
                            aux_power=100.0, fuel_rate=0.0, soc_next=soc,
                            reward=0.0, paper_reward=0.0, feasible=True,
                            mode=0, power_demand=0.0)

    def finish_episode(self, learn=True) -> None:
        pass


class TestNumericalWatchdog:
    def test_nan_current_trips_immediately(self, fresh_solver):
        with pytest.raises(NumericalError, match="step 5"):
            Simulator(fresh_solver).run_episode(
                _NaNController(poison_after=5), gentle_cycle(30))

    def test_solver_restored_after_watchdog_trip(self, fresh_solver):
        base_capacity = fresh_solver.params.battery.capacity
        schedule = FaultSchedule([ScheduledFault(
            BatteryFade(capacity_loss=0.3), start=0.0)])
        with pytest.raises(NumericalError):
            Simulator(fresh_solver).run_episode(
                _NaNController(), gentle_cycle(30), faults=schedule)
        assert fresh_solver.params.battery.capacity == base_capacity


class TestScenarioIO:
    def test_builtin_catalogue(self):
        scenarios = builtin_scenarios()
        assert len(scenarios) >= 4
        for name, scenario in scenarios.items():
            assert scenario.name == name
            assert scenario.description
            assert len(scenario.schedule) >= 1

    def test_json_round_trip(self, tmp_path):
        scenario = get_scenario("limp_home")
        path = tmp_path / "scenario.json"
        save_scenario(scenario, path)
        loaded = load_scenario(path)
        assert loaded.to_dict() == scenario.to_dict()

    def test_malformed_scenarios_rejected(self, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text("{not json")
        with pytest.raises(FaultScenarioError):
            load_scenario(bad)
        with pytest.raises(FaultScenarioError, match="unknown kind"):
            from repro.faults.scenarios import scenario_from_dict
            scenario_from_dict({"name": "x",
                                "faults": [{"kind": "gremlins"}]})
        with pytest.raises(FaultScenarioError, match="bad parameters"):
            from repro.faults.scenarios import scenario_from_dict
            scenario_from_dict({"name": "x", "faults": [
                {"kind": "battery_fade", "bogus_knob": 1}]})
        with pytest.raises(FaultScenarioError):
            get_scenario("no_such_scenario")


class TestCrashSafeTraining:
    def test_kill_and_resume_is_bit_identical(self, tmp_path):
        """A run killed after 2 episodes and resumed into a fresh process
        must finish with exactly the policy of an uninterrupted run."""
        cycle = gentle_cycle(40)
        ckpt = tmp_path / "ckpt"

        solver_a = PowertrainSolver(default_vehicle())
        straight = build_rl_controller(solver_a, seed=11)
        train(Simulator(solver_a), straight, cycle, episodes=4, seed=3,
              evaluate_after=False)

        solver_b = PowertrainSolver(default_vehicle())
        killed = build_rl_controller(solver_b, seed=11)
        train(Simulator(solver_b), killed, cycle, episodes=2, seed=3,
              evaluate_after=False, checkpoint_path=ckpt)
        # "Process death": everything about `killed` is discarded; only the
        # checkpoint files survive into the resumed run.
        solver_c = PowertrainSolver(default_vehicle())
        resumed = build_rl_controller(solver_c, seed=11)
        train(Simulator(solver_c), resumed, cycle, episodes=4, seed=3,
              evaluate_after=False, resume_from=ckpt)

        assert np.array_equal(resumed.agent.learner.qtable.values,
                              straight.agent.learner.qtable.values)
