"""Failure-injection tests: pathological inputs must degrade gracefully.

The simulator's promise is that *something* physically sensible executes on
every step, no matter how hostile the drive profile or battery state — the
fallback machinery absorbs infeasible demands instead of crashing or
producing unphysical outputs.
"""

import numpy as np
import pytest

from repro.control import (
    ECMSController,
    RuleBasedController,
    ThermostatController,
    build_rl_controller,
)
from repro.cycles import DriveCycle
from repro.powertrain import PowertrainSolver
from repro.sim import Simulator
from repro.vehicle import default_vehicle


@pytest.fixture(scope="module")
def solver():
    return PowertrainSolver(default_vehicle())


def brutal_cycle() -> DriveCycle:
    """A cycle with accelerations beyond the powertrain's ability."""
    speeds = np.array([0.0, 4.0, 12.0, 22.0, 30.0, 34.0, 20.0, 4.0, 0.0,
                       0.0, 8.0, 18.0, 28.0, 34.0, 16.0, 0.0])
    return DriveCycle("brutal", speeds)


def crawling_cycle() -> DriveCycle:
    """Low-speed stop-and-go where the engine cannot couple in any gear."""
    speeds = np.tile(np.array([0.0, 0.6, 1.2, 0.8, 0.3, 0.0]), 10)
    return DriveCycle("crawl", speeds)


class TestBrutalDemands:
    @pytest.mark.parametrize("make", [
        RuleBasedController, ECMSController, ThermostatController,
        lambda s: build_rl_controller(s, seed=1),
    ])
    def test_every_controller_survives(self, solver, make):
        controller = make(solver)
        result = Simulator(solver).run_episode(controller, brutal_cycle())
        # The run completes, fuel stays physical, SoC stays in [0, 1].
        assert np.all(result.fuel_rate >= 0.0)
        assert np.all((result.soc >= 0.0) & (result.soc <= 1.0))
        # Infeasible steps are marked, not hidden.
        assert result.fallback_steps >= 1

    def test_fallback_currents_physical(self, solver):
        result = Simulator(solver).run_episode(
            RuleBasedController(solver), brutal_cycle())
        imax = solver.params.battery.max_current
        assert np.all(np.abs(result.current) <= imax + 1e-6)


class TestCrawl:
    def test_ev_only_operation(self, solver):
        result = Simulator(solver).run_episode(
            RuleBasedController(solver), crawling_cycle(), initial_soc=0.7)
        # The engine cannot couple below idle speed in any gear: no fuel.
        assert result.total_fuel == pytest.approx(0.0)
        assert result.final_soc < 0.7  # aux + traction drain the pack


class TestBoundarySoc:
    def test_start_at_window_floor(self, solver):
        result = Simulator(solver).run_episode(
            RuleBasedController(solver), brutal_cycle(),
            initial_soc=solver.params.battery.soc_min)
        assert np.all(result.soc >= solver.params.battery.soc_min - 0.02)

    def test_start_at_window_ceiling(self, solver):
        result = Simulator(solver).run_episode(
            RuleBasedController(solver), brutal_cycle(),
            initial_soc=solver.params.battery.soc_max)
        assert np.all(result.soc <= solver.params.battery.soc_max + 0.02)

    def test_rl_agent_at_floor_never_deadlocks(self, solver):
        controller = build_rl_controller(solver, seed=2)
        cycle = crawling_cycle()
        result = Simulator(solver).run_episode(
            controller, cycle, initial_soc=solver.params.battery.soc_min)
        assert len(result.fuel_rate) == len(cycle) - 1


class TestDegenerateCycles:
    def test_all_idle_cycle(self, solver):
        cycle = DriveCycle("parked", np.zeros(30))
        result = Simulator(solver).run_episode(
            RuleBasedController(solver), cycle)
        assert result.total_fuel == 0.0
        assert result.distance == 0.0
        # Auxiliaries keep draining the pack while parked.
        assert result.final_soc < result.initial_soc

    def test_constant_speed_cycle(self, solver):
        cycle = DriveCycle("cruise", np.full(60, 20.0))
        result = Simulator(solver).run_episode(
            RuleBasedController(solver), cycle)
        assert result.total_fuel > 0.0
        assert result.fallback_steps == 0
