"""Tests of the TD(lambda) learner (paper Algorithm 1)."""

import numpy as np
import pytest

from repro.rl.td_lambda import TDLambdaConfig, TDLambdaLearner


class TestConfig:
    def test_defaults_valid(self):
        TDLambdaConfig()

    def test_rejects_bad_learning_rate(self):
        with pytest.raises(ValueError):
            TDLambdaConfig(learning_rate=0.0)
        with pytest.raises(ValueError):
            TDLambdaConfig(learning_rate=1.5)

    def test_rejects_bad_discount(self):
        with pytest.raises(ValueError):
            TDLambdaConfig(discount=1.0)
        with pytest.raises(ValueError):
            TDLambdaConfig(discount=0.0)

    def test_rejects_bad_lambda(self):
        with pytest.raises(ValueError):
            TDLambdaConfig(trace_decay=1.5)

    def test_rejects_zero_traces(self):
        with pytest.raises(ValueError):
            TDLambdaConfig(max_traces=0)


class TestAlgorithmOne:
    def test_delta_formula(self):
        # Line 5: delta = r + gamma max_a' Q(s', a') - Q(s, a).
        cfg = TDLambdaConfig(learning_rate=0.5, discount=0.9, trace_decay=0.0)
        learner = TDLambdaLearner(3, 2, cfg, seed=0)
        q = learner.qtable.values
        q[:] = 0.0
        q[1, 0] = 2.0  # max_a' Q(s'=1, .) = 2
        delta = learner.update(state=0, action=1, reward=1.0, next_state=1)
        assert delta == pytest.approx(1.0 + 0.9 * 2.0 - 0.0)

    def test_lambda_zero_updates_only_current_pair(self):
        cfg = TDLambdaConfig(learning_rate=0.5, discount=0.9, trace_decay=0.0)
        learner = TDLambdaLearner(3, 2, cfg, seed=0)
        learner.qtable.values[:] = 0.0
        learner.update(0, 0, 1.0, 1)
        q = learner.qtable.values
        assert q[0, 0] == pytest.approx(0.5 * 1.0)
        assert np.count_nonzero(q) == 1

    def test_traces_propagate_to_predecessors(self):
        # With lambda > 0, a reward must also update the previous pair.
        cfg = TDLambdaConfig(learning_rate=0.5, discount=0.9, trace_decay=0.8)
        learner = TDLambdaLearner(4, 2, cfg, seed=0)
        learner.qtable.values[:] = 0.0
        learner.update(0, 0, 0.0, 1)  # no reward: no change
        learner.update(1, 1, 1.0, 2)  # reward: both (1,1) and (0,0) move
        q = learner.qtable.values
        assert q[1, 1] > 0.0
        assert q[0, 0] > 0.0
        assert q[0, 0] == pytest.approx(
            q[1, 1] * 0.9 * 0.8)  # decayed eligibility ratio

    def test_terminal_update_no_bootstrap(self):
        cfg = TDLambdaConfig(learning_rate=1.0, discount=0.9, trace_decay=0.0)
        learner = TDLambdaLearner(2, 1, cfg, seed=0)
        learner.qtable.values[:] = 0.0
        learner.qtable.values[1, 0] = 100.0  # must NOT leak in
        delta = learner.update_terminal(0, 0, -3.0)
        assert delta == pytest.approx(-3.0)
        assert learner.qtable.values[0, 0] == pytest.approx(-3.0)

    def test_start_episode_clears_traces(self):
        learner = TDLambdaLearner(3, 2, TDLambdaConfig(), seed=0)
        learner.update(0, 0, 1.0, 1)
        assert len(learner.traces) > 0
        learner.start_episode()
        assert len(learner.traces) == 0

    def test_trace_list_bounded_by_m(self):
        cfg = TDLambdaConfig(max_traces=4, trace_decay=0.9)
        learner = TDLambdaLearner(20, 1, cfg, seed=0)
        for s in range(10):
            learner.update(s, 0, 0.1, s + 1)
        assert len(learner.traces) <= 4


class TestConvergence:
    def test_converges_on_two_state_mdp(self):
        """Deterministic 2-state MDP with known optimal Q values.

        States 0, 1; actions stay(0)/switch(1).  Reward 1 for being in
        state 1 (on arrival), 0 otherwise.  gamma = 0.5.  Optimal: always
        go to / stay in state 1; V*(1) = 2, V*(0) = 1 * gamma-adjusted.
        """
        cfg = TDLambdaConfig(learning_rate=0.2, discount=0.5,
                             trace_decay=0.3)
        learner = TDLambdaLearner(2, 2, cfg, seed=1)
        rng = np.random.default_rng(0)
        state = 0
        for step in range(8000):
            # epsilon-greedy with fixed epsilon
            if rng.random() < 0.3:
                action = int(rng.integers(0, 2))
            else:
                action = learner.qtable.best_action(state)
            next_state = state if action == 0 else 1 - state
            reward = 1.0 if next_state == 1 else 0.0
            learner.update(state, action, reward, next_state)
            state = next_state
        # Q*(1, stay) = 1 + 0.5 Q*(1, stay) => 2.
        assert learner.qtable.values[1, 0] == pytest.approx(2.0, abs=0.15)
        # Q*(0, switch) = 1 + 0.5 * 2 = 2.
        assert learner.qtable.values[0, 1] == pytest.approx(2.0, abs=0.15)
        # Staying in 0 is worse: Q*(0, stay) = 0 + 0.5 * 2 = 1.
        assert learner.qtable.values[0, 0] == pytest.approx(1.0, abs=0.2)
        # Greedy policy is optimal.
        assert learner.qtable.best_action(0) == 1
        assert learner.qtable.best_action(1) == 0

    def test_lambda_speeds_up_learning(self):
        """On a delayed-reward chain, TD(lambda>0) must propagate credit
        to early states faster than TD(0) — the paper's stated reason for
        choosing TD(lambda)."""
        def run(trace_decay):
            cfg = TDLambdaConfig(learning_rate=0.3, discount=0.9,
                                 trace_decay=trace_decay, max_traces=16)
            learner = TDLambdaLearner(6, 1, cfg, seed=2)
            learner.qtable.values[:] = 0.0
            for _ in range(3):
                learner.start_episode()
                for s in range(5):
                    reward = 1.0 if s == 4 else 0.0
                    learner.update(s, 0, reward, s + 1)
            return learner.qtable.values[0, 0]

        assert run(0.9) > run(0.0) + 1e-6
