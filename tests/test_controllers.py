"""Tests of the baseline controllers (rule-based, ECMS, DP)."""

import numpy as np
import pytest

from repro.control import (
    DPConfig,
    DPController,
    ECMSConfig,
    ECMSController,
    RuleBasedConfig,
    RuleBasedController,
    build_rl_controller,
    solve_dp,
)
from repro.cycles import CycleSpec, synthesize
from repro.powertrain import PowertrainSolver
from repro.sim import Simulator, evaluate
from repro.vehicle import default_vehicle


@pytest.fixture(scope="module")
def solver():
    return PowertrainSolver(default_vehicle())


@pytest.fixture(scope="module")
def short_cycle():
    return synthesize(CycleSpec("short", duration=120, mean_speed_kmh=28.0,
                                max_speed_kmh=55.0, stop_count=2, seed=5))


class TestRuleBasedConfig:
    def test_defaults_valid(self):
        RuleBasedConfig()

    def test_rejects_bad_soc_order(self):
        with pytest.raises(ValueError):
            RuleBasedConfig(soc_critical=0.6, soc_charge_threshold=0.5)

    def test_rejects_positive_charge_current(self):
        with pytest.raises(ValueError):
            RuleBasedConfig(charge_current=5.0)

    def test_rejects_negative_assist_current(self):
        with pytest.raises(ValueError):
            RuleBasedConfig(assist_current=-5.0)


class TestRuleBasedDecisions:
    def test_braking_commands_regen(self, solver):
        rb = RuleBasedController(solver)
        assert rb._target_current(-5000.0, 10.0, 0.6) < 0.0

    def test_low_soc_charges(self, solver):
        rb = RuleBasedController(solver)
        assert rb._target_current(5000.0, 10.0, 0.42) < 0.0

    def test_ev_mode_discharges(self, solver):
        rb = RuleBasedController(solver)
        i = rb._target_current(5000.0, 8.0, 0.65)
        assert i > 0.0

    def test_high_power_assists(self, solver):
        rb = RuleBasedController(solver)
        cfg = rb.config
        i = rb._target_current(cfg.assist_power_threshold + 1000.0, 20.0, 0.65)
        assert i == cfg.assist_current

    def test_aux_shed_at_critical_soc(self, solver):
        rb = RuleBasedController(solver)
        assert rb._aux_power(0.42) == solver.auxiliary.min_power
        assert rb._aux_power(0.6) == pytest.approx(600.0)

    def test_gear_schedule_monotone(self, solver):
        rb = RuleBasedController(solver)
        preferred = [int(rb._gear_order(v)[0]) for v in (2.0, 6.0, 10.0,
                                                         16.0, 25.0)]
        assert preferred == sorted(preferred)

    def test_full_episode_runs(self, solver, short_cycle):
        rb = RuleBasedController(solver)
        result = evaluate(Simulator(solver), rb, short_cycle)
        assert result.total_fuel > 0.0
        assert result.fallback_steps <= 2
        assert np.all(result.soc >= 0.38)


class TestECMS:
    def test_config_validation(self):
        with pytest.raises(ValueError):
            ECMSConfig(equivalence_factor=0.0)
        with pytest.raises(ValueError):
            ECMSConfig(soc_target=1.5)
        with pytest.raises(ValueError):
            ECMSConfig(current_levels=2)

    def test_equivalence_factor_feedback(self, solver):
        ec = ECMSController(solver)
        # Low SoC inflates s (discharge expensive), high SoC deflates it.
        assert (ec.equivalence_factor(0.45)
                > ec.equivalence_factor(0.60)
                > ec.equivalence_factor(0.75))

    def test_equivalence_factor_floor(self, solver):
        ec = ECMSController(solver)
        assert ec.equivalence_factor(5.0) >= 0.1

    def test_full_episode_charge_sustaining(self, solver, short_cycle):
        ec = ECMSController(solver)
        result = evaluate(Simulator(solver), ec, short_cycle)
        assert abs(result.final_soc - 0.60) < 0.08
        assert result.total_fuel > 0.0

    def test_beats_rule_based_on_fuel(self, solver, short_cycle):
        # The model-based optimiser should not lose to threshold rules on
        # SoC-corrected fuel.
        sim = Simulator(solver)
        ec = evaluate(sim, ECMSController(solver), short_cycle)
        rb = evaluate(sim, RuleBasedController(solver), short_cycle)
        assert ec.corrected_fuel() <= rb.corrected_fuel() * 1.02


class TestDP:
    def test_config_validation(self):
        with pytest.raises(ValueError):
            DPConfig(soc_nodes=2)
        with pytest.raises(ValueError):
            DPConfig(conversion_efficiency=0.0)

    def test_value_function_shape(self, solver, short_cycle):
        cfg = DPConfig(soc_nodes=7, current_levels=5, aux_levels=2)
        sol = solve_dp(solver, short_cycle, config=cfg)
        assert sol.values.shape == (len(short_cycle), 7)

    def test_terminal_cost_charges_deficit_only(self, solver, short_cycle):
        cfg = DPConfig(soc_nodes=7, current_levels=5, aux_levels=2)
        sol = solve_dp(solver, short_cycle, initial_soc=0.6, config=cfg)
        terminal = sol.values[-1]
        # Nodes above initial SoC have zero terminal cost.
        assert terminal[-1] == 0.0
        # Nodes below are charged, monotonically in the deficit.
        assert terminal[0] > terminal[1] > 0.0

    def test_cost_to_go_decreases_with_charge(self, solver, short_cycle):
        cfg = DPConfig(soc_nodes=7, current_levels=5, aux_levels=2)
        sol = solve_dp(solver, short_cycle, config=cfg)
        # More stored energy can never make the optimal future worse.
        v = sol.values[0]
        assert v[0] >= v[-1] - 1e-9

    def test_dp_controller_runs_and_scores_well(self, solver, short_cycle):
        cfg = DPConfig(soc_nodes=9, current_levels=7, aux_levels=3)
        sol = solve_dp(solver, short_cycle, config=cfg)
        sim = Simulator(solver)
        dp = evaluate(sim, DPController(solver, sol, config=cfg), short_cycle)
        rb = evaluate(sim, RuleBasedController(solver), short_cycle)
        # The offline optimum must not lose to the rule baseline on the
        # joint objective (paper reward with charge correction).
        dp_cost = dp.corrected_fuel()
        rb_cost = rb.corrected_fuel()
        assert dp_cost <= rb_cost * 1.05


class TestRLFactory:
    def test_variants_build(self, solver):
        for variant in ("proposed", "no_prediction", "baseline13"):
            build_rl_controller(solver, variant=variant)

    def test_unknown_variant_raises(self, solver):
        with pytest.raises(ValueError):
            build_rl_controller(solver, variant="nope")

    def test_proposed_has_predictor(self, solver):
        ctrl = build_rl_controller(solver, variant="proposed")
        assert ctrl.agent.predictor is not None

    def test_baseline13_fixed_aux(self, solver):
        ctrl = build_rl_controller(solver, variant="baseline13")
        assert ctrl.agent.predictor is None
        assert len(ctrl.agent.aux_levels) == 1
