"""Tests of the chaos harness (:mod:`repro.chaos`) and fsio shim layer.

Covers the three contracts the harness itself must honour: the fsio
wrappers are bit-identical pass-throughs when no shim is installed
(golden inertness), fault plans and campaign signatures are pure
functions of their seeds (determinism), and broken invariants are
*reported*, never swallowed (honest accounting).
"""

import json
import os
import time

import numpy as np
import pytest

from repro import fsio
from repro.chaos import (
    EXPERIMENTS,
    FAULT_KINDS,
    RESUMABLE,
    ChaosPlan,
    EnospcShim,
    SlowWriteShim,
    run_campaign,
)
from repro.cli import main
from repro.errors import (
    ChaosError,
    InvariantViolation,
    ManifestError,
    TelemetryError,
)
from repro.exec import Supervisor, SweepManifest, Task
from repro.telemetry.events import EventSink

FAST_KINDS = ["abort_mid_sweep", "torn_final_manifest_line",
              "torn_nonfinal_manifest_line", "duplicated_manifest_lines",
              "reordered_manifest_lines", "eventsink_torn_line",
              "enospc_manifest_append", "slow_manifest_io"]
"""Manifest/telemetry kinds only — no forked workers, no training."""


# --------------------------------------------------------------- fsio layer --

class TestFsioInertness:
    """With no shim installed every wrapper is the raw os call."""

    def test_no_shim_is_the_default(self):
        assert fsio.current_shim() is None

    def test_file_write_matches_direct_write(self, tmp_path):
        via_fsio, direct = tmp_path / "a.txt", tmp_path / "b.txt"
        with via_fsio.open("w") as fh:
            fsio.file_write(fh, "line one\nline two\n", path=via_fsio)
        with direct.open("w") as fh:
            fh.write("line one\nline two\n")
        assert via_fsio.read_bytes() == direct.read_bytes()

    def test_os_write_matches_direct_write(self, tmp_path):
        via_fsio, direct = tmp_path / "a.bin", tmp_path / "b.bin"
        fd = os.open(str(via_fsio), os.O_WRONLY | os.O_CREAT)
        try:
            assert fsio.os_write(fd, b"payload", path=via_fsio) == 7
        finally:
            os.close(fd)
        direct.write_bytes(b"payload")
        assert via_fsio.read_bytes() == direct.read_bytes()

    def test_replace_moves_into_place(self, tmp_path):
        src, dst = tmp_path / "tmp", tmp_path / "final"
        src.write_bytes(b"x")
        dst.write_bytes(b"old")
        fsio.replace(src, dst)
        assert dst.read_bytes() == b"x" and not src.exists()

    def test_passthrough_shim_is_bit_identical(self, tmp_path):
        """A base FilesystemShim (all defaults) must not perturb any
        write — the golden guarantee the experiments rely on."""
        def sweep_into(directory):
            path = directory / "m.jsonl"
            Supervisor(manifest=SweepManifest(path)).run(
                [Task(key=f"t{i}", fn=(lambda i=i: {"i": i}),
                      spec={"i": i}) for i in range(3)])
            return path

        plain_dir = tmp_path / "plain"
        shim_dir = tmp_path / "shimmed"
        plain_dir.mkdir(), shim_dir.mkdir()
        plain = sweep_into(plain_dir)
        with fsio.shimmed(fsio.FilesystemShim()):
            shimmed = sweep_into(shim_dir)

        def stripped(path):  # timestamps differ; structure must not
            return [{k: v for k, v in json.loads(line).items()
                     if k not in ("created_unix", "completed_unix",
                                  "elapsed")}
                    for line in path.read_text().splitlines()]
        assert stripped(plain) == stripped(shimmed)


class TestShimInstallation:
    def test_double_install_raises(self):
        with fsio.shimmed(fsio.FilesystemShim()):
            with pytest.raises(ChaosError, match="already installed"):
                fsio.install_shim(fsio.FilesystemShim())
        assert fsio.current_shim() is None

    def test_non_shim_rejected(self):
        with pytest.raises(ChaosError, match="subclass"):
            fsio.install_shim(object())

    def test_shimmed_uninstalls_on_error(self):
        with pytest.raises(RuntimeError):
            with fsio.shimmed(fsio.FilesystemShim()):
                raise RuntimeError("boom")
        assert fsio.current_shim() is None


class TestEnospcShim:
    def test_tears_the_failing_write_then_keeps_failing(self, tmp_path):
        target = tmp_path / "victim.txt"
        shim = EnospcShim(fail_after_writes=2, partial_fraction=0.5,
                          match="victim")
        with fsio.shimmed(shim):
            with target.open("w") as fh:
                fsio.file_write(fh, "complete\n", path=target)
                with pytest.raises(OSError, match="No space left"):
                    fsio.file_write(fh, "12345678", path=target)
                with pytest.raises(OSError, match="No space left"):
                    fsio.file_write(fh, "more", path=target)
        assert shim.tripped
        assert target.read_text() == "complete\n1234"  # torn, not clean

    def test_untargeted_paths_are_untouched(self, tmp_path):
        bystander = tmp_path / "other.txt"
        with fsio.shimmed(EnospcShim(fail_after_writes=1, match="victim")):
            with bystander.open("w") as fh:
                fsio.file_write(fh, "fine", path=bystander)
        assert bystander.read_text() == "fine"

    def test_rejects_bad_parameters(self):
        with pytest.raises(ChaosError):
            EnospcShim(fail_after_writes=0)
        with pytest.raises(ChaosError):
            EnospcShim(fail_after_writes=1, partial_fraction=1.0)


class TestSlowWriteShim:
    def test_stalls_but_preserves_data(self, tmp_path):
        target = tmp_path / "slow.txt"
        shim = SlowWriteShim(0.02, match="slow")
        start = time.monotonic()
        with fsio.shimmed(shim):
            with target.open("w") as fh:
                fsio.file_write(fh, "a\n", path=target)
                fsio.file_write(fh, "b\n", path=target)
        assert time.monotonic() - start >= 0.04
        assert target.read_text() == "a\nb\n"
        assert shim.intercepted == 2


# -------------------------------------------------------------------- plans --

class TestChaosPlan:
    def test_same_seed_same_plan(self):
        assert ChaosPlan.generate(7) == ChaosPlan.generate(7)

    def test_different_seeds_differ(self):
        assert ChaosPlan.generate(0) != ChaosPlan.generate(1)

    def test_params_are_json_scalars(self):
        for fault in ChaosPlan.generate(3).faults:
            json.dumps(fault.to_json())  # raises on anything exotic

    def test_kind_params_independent_of_selection(self):
        """Requesting fewer kinds must not perturb the others' params."""
        full = {f.kind: f.params for f in ChaosPlan.generate(5).faults}
        alone = ChaosPlan.generate(5, ["policy_bitflip"]).faults[0]
        assert alone.params == full["policy_bitflip"]

    def test_every_kind_scheduled_once(self):
        plan = ChaosPlan.generate(2)
        assert sorted(f.kind for f in plan.faults) == sorted(FAULT_KINDS)

    def test_rejects_unknown_kind(self):
        with pytest.raises(ChaosError, match="unknown fault kind"):
            ChaosPlan.generate(0, ["no_such_fault"])

    def test_rejects_bad_seed_and_empty_kinds(self):
        with pytest.raises(ChaosError):
            ChaosPlan.generate(-1)
        with pytest.raises(ChaosError):
            ChaosPlan.generate(0, [])

    def test_registry_covers_every_kind(self):
        assert set(EXPERIMENTS) == set(FAULT_KINDS)
        assert set(RESUMABLE) == set(FAULT_KINDS)


# -------------------------------------------------------------- experiments --

class TestIndividualExperiments:
    """Each experiment verifies its invariant on hand-picked params."""

    @pytest.mark.parametrize("kind", FAST_KINDS)
    def test_fast_kind_holds_its_invariant(self, kind, tmp_path):
        fault = next(f for f in ChaosPlan.generate(0).faults
                     if f.kind == kind)
        outcome = EXPERIMENTS[kind](fault, tmp_path)
        assert outcome.kind == kind
        assert outcome.detected
        assert outcome.resumable == RESUMABLE[kind]
        if outcome.resumable:
            assert outcome.recovered
            assert outcome.recovery_seconds >= 0
        else:
            assert outcome.recovered is None


# ----------------------------------------------------------------- campaign --

class TestCampaign:
    def test_fast_campaign_is_clean(self, tmp_path):
        report = run_campaign(seeds=2, kinds=FAST_KINDS, workdir=tmp_path)
        assert report.clean
        assert report.detection_rate == 1.0
        assert report.recovery_rate == 1.0
        assert report.faults == 2 * len(FAST_KINDS)
        assert report.latency.count > 0

    def test_signature_is_deterministic(self):
        kinds = ["duplicated_manifest_lines", "torn_final_manifest_line"]
        first = run_campaign(seeds=2, kinds=kinds)
        second = run_campaign(seeds=2, kinds=kinds)
        assert first.signature() == second.signature()

    def test_report_json_round_trips(self):
        report = run_campaign(seeds=1, kinds=["reordered_manifest_lines"])
        decoded = json.loads(json.dumps(report.to_json()))
        assert decoded["totals"]["faults"] == 1
        assert decoded["detection_rate"] == 1.0
        assert decoded["per_kind"]["reordered_manifest_lines"]["runs"] == 1

    def test_render_summarises(self):
        report = run_campaign(seeds=1, kinds=["duplicated_manifest_lines"])
        text = report.render()
        assert "detected : 1/1" in text
        assert "duplicated_manifest_lines" in text

    def test_violation_is_recorded_not_raised(self, monkeypatch):
        """A broken invariant becomes a finding; the campaign finishes."""
        def broken(fault, workdir):
            raise InvariantViolation("planted violation")
        monkeypatch.setitem(EXPERIMENTS, "duplicated_manifest_lines",
                            broken)
        report = run_campaign(
            seeds=1, kinds=["duplicated_manifest_lines",
                            "reordered_manifest_lines"])
        assert not report.clean
        assert report.detection_rate == 0.5
        assert [v["kind"] for v in report.violations] == \
            ["duplicated_manifest_lines"]
        assert "planted violation" in report.render()

    def test_rejects_bad_seed_count(self):
        with pytest.raises(ChaosError):
            run_campaign(seeds=0)


# ---------------------------------------------------------------------- cli --

class TestChaosCli:
    def test_clean_campaign_exits_zero_and_writes_report(self, tmp_path,
                                                         capsys):
        report_path = tmp_path / "report.json"
        code = main(["chaos", "--seeds", "1",
                     "--kinds", "duplicated_manifest_lines,policy_bitflip",
                     "--report", str(report_path)])
        assert code == 0
        out = capsys.readouterr().out
        assert "detected : 2/2" in out
        decoded = json.loads(report_path.read_text())
        assert decoded["report"] == "chaos_campaign"
        assert decoded["totals"]["violations"] == 0

    def test_violation_exits_one(self, monkeypatch, capsys):
        def broken(fault, workdir):
            raise InvariantViolation("planted violation")
        monkeypatch.setitem(EXPERIMENTS, "reordered_manifest_lines",
                            broken)
        code = main(["chaos", "--seeds", "1",
                     "--kinds", "reordered_manifest_lines"])
        assert code == 1
        assert "VIOLATION" in capsys.readouterr().out

    def test_unknown_kind_is_a_clean_error(self, capsys):
        code = main(["chaos", "--seeds", "1", "--kinds", "nope"])
        assert code == 2
        assert "unknown fault kind" in capsys.readouterr().err


# ---------------------------------------------------- faulted layers (spot) --

class TestEventSinkUnderEnospc:
    def test_failed_append_is_structured_and_lossless(self, tmp_path):
        path = tmp_path / "events.jsonl"
        with EventSink(path, run_id="t") as sink:
            sink.emit("log", level="WARNING", logger="t", message="one")
            with fsio.shimmed(EnospcShim(fail_after_writes=1,
                                         partial_fraction=0.0,
                                         match="events")):
                with pytest.raises(TelemetryError, match="cannot append"):
                    sink.emit("log", level="WARNING", logger="t",
                              message="two")
        lines = path.read_text().splitlines()
        assert len(lines) == 2  # header + first event, nothing torn
        assert all(json.loads(line) for line in lines)


class TestManifestUnderEnospc:
    def test_failed_append_names_the_journal(self, tmp_path):
        path = tmp_path / "m.jsonl"
        manifest = SweepManifest(path)
        with fsio.shimmed(EnospcShim(fail_after_writes=1,
                                     partial_fraction=0.0,
                                     match="m.jsonl")):
            with pytest.raises(ManifestError, match="cannot append"):
                Supervisor(manifest=manifest).run(
                    [Task(key="a", fn=lambda: 1, spec={"n": 1})])
