"""Tests of the Rint battery model and Coulomb counting."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.vehicle.battery import Battery, BatteryState
from repro.vehicle.params import BatteryParams


@pytest.fixture
def battery():
    return Battery(BatteryParams())


class TestStateHelpers:
    def test_initial_state_soc_roundtrip(self, battery):
        state = battery.initial_state(0.65)
        assert battery.soc(state) == pytest.approx(0.65)

    def test_initial_state_rejects_out_of_range(self, battery):
        with pytest.raises(ValueError):
            battery.initial_state(1.2)

    def test_window_bounds(self, battery):
        p = battery.params
        assert battery.charge_min == pytest.approx(p.soc_min * p.capacity)
        assert battery.charge_max == pytest.approx(p.soc_max * p.capacity)

    def test_state_copy_independent(self, battery):
        a = battery.initial_state(0.6)
        b = a.copy()
        b.charge += 100.0
        assert a.charge != b.charge


class TestElectricalModel:
    def test_ocv_affine_endpoints(self, battery):
        p = battery.params
        assert float(battery.open_circuit_voltage(0.0)) == pytest.approx(
            p.voltage_at_empty)
        assert float(battery.open_circuit_voltage(1.0)) == pytest.approx(
            p.voltage_at_full)

    def test_ocv_monotone(self, battery):
        socs = np.linspace(0, 1, 11)
        v = np.asarray(battery.open_circuit_voltage(socs))
        assert np.all(np.diff(v) > 0)

    def test_resistance_direction(self, battery):
        p = battery.params
        assert float(battery.internal_resistance(10.0)) == p.discharge_resistance
        assert float(battery.internal_resistance(-10.0)) == p.charge_resistance

    def test_terminal_power_loses_to_resistance_discharging(self, battery):
        # P = Voc*i - i^2 R < Voc*i while discharging.
        voc = float(battery.open_circuit_voltage(0.6))
        p = float(battery.terminal_power(20.0, 0.6))
        assert p < voc * 20.0
        assert p > 0

    def test_terminal_power_charging_magnitude_exceeds_stored(self, battery):
        # While charging, the bus must supply the stored power plus loss.
        voc = float(battery.open_circuit_voltage(0.6))
        p = float(battery.terminal_power(-20.0, 0.6))
        assert p < voc * -20.0  # more negative than the ideal

    def test_zero_current_zero_power(self, battery):
        assert float(battery.terminal_power(0.0, 0.6)) == pytest.approx(0.0)


class TestPowerInversion:
    @given(st.floats(min_value=-15_000.0, max_value=15_000.0),
           st.floats(min_value=0.1, max_value=0.9))
    def test_roundtrip(self, power, soc):
        battery = Battery(BatteryParams())
        max_p = float(battery.max_discharge_power(soc))
        if power > max_p * 0.98:
            return  # clamped region, no exact roundtrip expected
        current = float(battery.current_for_power(power, soc))
        back = float(battery.terminal_power(current, soc))
        assert back == pytest.approx(power, rel=1e-6, abs=1e-3)

    def test_sign_convention(self, battery):
        assert float(battery.current_for_power(5000.0, 0.6)) > 0
        assert float(battery.current_for_power(-5000.0, 0.6)) < 0

    def test_excess_power_clamps_to_max(self, battery):
        huge = float(battery.current_for_power(1e7, 0.6))
        voc = float(battery.open_circuit_voltage(0.6))
        assert huge == pytest.approx(
            voc / (2.0 * battery.params.discharge_resistance))

    def test_max_discharge_power_respects_current_limit(self, battery):
        p_max = float(battery.max_discharge_power(0.6))
        current = float(battery.current_for_power(p_max, 0.6))
        assert current <= battery.params.max_current * 1.001


class TestCoulombCounting:
    def test_discharge_removes_charge(self, battery):
        s0 = battery.initial_state(0.6)
        s1 = battery.step(s0, 10.0, 1.0)
        assert s1.charge == pytest.approx(s0.charge - 10.0)

    def test_charge_stores_with_efficiency(self, battery):
        s0 = battery.initial_state(0.6)
        s1 = battery.step(s0, -10.0, 1.0)
        assert s1.charge == pytest.approx(
            s0.charge + 10.0 * battery.params.coulombic_efficiency)

    def test_round_trip_loses_charge(self, battery):
        s0 = battery.initial_state(0.6)
        s1 = battery.step(s0, -10.0, 1.0)
        s2 = battery.step(s1, 10.0 * battery.params.coulombic_efficiency, 1.0)
        assert s2.charge < s0.charge + 1e-9

    def test_rejects_nonpositive_dt(self, battery):
        with pytest.raises(ValueError):
            battery.step(battery.initial_state(0.5), 1.0, 0.0)

    def test_clips_at_physical_bounds(self, battery):
        s0 = battery.initial_state(0.01)
        s1 = battery.step(s0, battery.params.max_current, 3600.0)
        assert s1.charge == 0.0
        s2 = battery.step(battery.initial_state(0.99), -battery.params.max_current,
                          3600.0)
        assert s2.charge == battery.params.capacity

    @given(st.floats(min_value=-80.0, max_value=80.0),
           st.floats(min_value=0.3, max_value=0.7))
    def test_soc_stays_in_physical_range(self, current, soc):
        battery = Battery(BatteryParams())
        state = battery.initial_state(soc)
        for _ in range(10):
            state = battery.step(state, current, 1.0)
        assert 0.0 <= battery.soc(state) <= 1.0


class TestLimitsAndWindow:
    def test_clamp_current(self, battery):
        imax = battery.params.max_current
        assert float(battery.clamp_current(imax * 2)) == imax
        assert float(battery.clamp_current(-imax * 2)) == -imax

    def test_is_current_feasible(self, battery):
        imax = battery.params.max_current
        assert bool(battery.is_current_feasible(imax))
        assert not bool(battery.is_current_feasible(imax + 1.0))

    def test_window_violation_inside_is_zero(self, battery):
        assert battery.window_violation(battery.initial_state(0.6)) == 0.0

    def test_window_violation_below(self, battery):
        state = battery.initial_state(0.35)
        assert battery.window_violation(state) > 0.0

    def test_window_violation_above(self, battery):
        state = battery.initial_state(0.85)
        assert battery.window_violation(state) > 0.0
