"""Tests of the batch experiment runner in :mod:`repro.sim.batch`."""

import pytest

from repro.control import RuleBasedController
from repro.control.rl_controller import build_rl_controller
from repro.cycles import CycleSpec, synthesize
from repro.errors import ConfigurationError
from repro.powertrain import PowertrainSolver
from repro.sim import BatchResult, Summary, compare_batches, run_batch
from repro.sim.results import EpisodeResult
from repro.vehicle import default_vehicle


@pytest.fixture(scope="module")
def cycle():
    return synthesize(CycleSpec("b", duration=100, mean_speed_kmh=24.0,
                                max_speed_kmh=48.0, stop_count=2, seed=61))


class TestSummary:
    def test_of_single_value(self):
        s = Summary.of([5.0])
        assert s.mean == 5.0
        assert s.std == 0.0
        assert s.count == 1

    def test_of_multiple(self):
        s = Summary.of([1.0, 3.0])
        assert s.mean == 2.0
        assert s.minimum == 1.0
        assert s.maximum == 3.0
        assert s.std == pytest.approx(1.0)

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            Summary.of([])

    def test_str_contains_mean(self):
        assert "2.00" in str(Summary.of([2.0]))


class TestRunBatch:
    def test_rule_based_batch_deterministic(self, cycle):
        batch = run_batch(
            lambda solver, seed: RuleBasedController(solver),
            lambda: PowertrainSolver(default_vehicle()),
            cycle, seeds=[0, 1], episodes=1)
        stats = batch.summarize()
        # Deterministic controller: zero spread across seeds.
        assert stats["total_fuel_g"].std == pytest.approx(0.0)
        assert stats["total_fuel_g"].count == 2

    def test_rl_batch_has_seed_spread(self, cycle):
        batch = run_batch(
            lambda solver, seed: build_rl_controller(solver, seed=seed),
            lambda: PowertrainSolver(default_vehicle()),
            cycle, seeds=[1, 2], episodes=3)
        stats = batch.summarize()
        assert stats["total_fuel_g"].count == 2
        # Different exploration seeds should not produce bit-identical fuel.
        assert stats["total_fuel_g"].std >= 0.0

    def test_rejects_empty_seeds(self, cycle):
        with pytest.raises(ValueError):
            run_batch(lambda s, seed: RuleBasedController(s),
                      lambda: PowertrainSolver(default_vehicle()),
                      cycle, seeds=[], episodes=1)

    def test_rejects_zero_episodes(self, cycle):
        with pytest.raises(ValueError):
            run_batch(lambda s, seed: RuleBasedController(s),
                      lambda: PowertrainSolver(default_vehicle()),
                      cycle, seeds=[0], episodes=0)

    def test_summarize_empty_batch_raises(self):
        with pytest.raises(ValueError):
            BatchResult().summarize()

    def test_forwards_repetition_seed_to_train(self, cycle, monkeypatch):
        """Regression: every repetition must train with its own seed.

        Before the fix, ``run_batch`` never passed ``seed`` to ``train``,
        so all repetitions drew the same exploring-start SoC sequence
        from seed 0 — silently narrowing the error bars the batch runner
        exists to report.
        """
        seen = []
        real_train = __import__("repro.sim.batch",
                                fromlist=["train"]).train

        def spy_train(simulator, controller, cycle, **kwargs):
            seen.append(kwargs.get("seed"))
            return real_train(simulator, controller, cycle, **kwargs)

        monkeypatch.setattr("repro.sim.batch.train", spy_train)
        run_batch(lambda solver, seed: RuleBasedController(solver),
                  lambda: PowertrainSolver(default_vehicle()),
                  cycle, seeds=[7, 11], episodes=1)
        assert seen == [7, 11]

    def test_rl_exploring_starts_differ_across_seeds(self, cycle):
        """The seed actually changes the training trajectory: with
        nonzero SoC jitter, repetitions started from different seeds must
        not train on bit-identical exploring starts."""
        batch = run_batch(
            lambda solver, seed: build_rl_controller(solver, seed=0),
            lambda: PowertrainSolver(default_vehicle()),
            cycle, seeds=[3, 4], episodes=2)
        a, b = batch.evaluations
        # Identical controller seed, different repetition seeds: any
        # difference can only come from the forwarded training seed.
        assert (a.total_fuel, a.final_soc) != (b.total_fuel, b.final_soc)

    def test_batch_reports_full_coverage(self, cycle):
        batch = run_batch(lambda s, seed: RuleBasedController(s),
                          lambda: PowertrainSolver(default_vehicle()),
                          cycle, seeds=[0, 1], episodes=1)
        assert batch.planned == 2
        assert batch.coverage == 1.0
        assert batch.failures == []
        assert all(isinstance(e, EpisodeResult) for e in batch.evaluations)


class TestCompareBatches:
    def test_identical_batches_zero_diff(self, cycle):
        make = lambda: run_batch(
            lambda solver, seed: RuleBasedController(solver),
            lambda: PowertrainSolver(default_vehicle()),
            cycle, seeds=[0], episodes=1)
        assert compare_batches(make(), make()) == pytest.approx(0.0)

    def test_unknown_metric_raises_structured(self, cycle):
        batch = run_batch(
            lambda solver, seed: RuleBasedController(solver),
            lambda: PowertrainSolver(default_vehicle()),
            cycle, seeds=[0], episodes=1)
        with pytest.raises(ConfigurationError, match="unknown metric"):
            compare_batches(batch, batch, metric="nope")
