"""Tests of the analysis metrics and report rendering."""

import pytest

from repro.analysis import (
    improvement_percent,
    normalized_fuel,
    render_figure_series,
    render_table,
    reward_gap_percent,
)


class TestMetrics:
    def test_normalized_fuel(self):
        assert normalized_fuel(90.0, 100.0) == pytest.approx(0.9)

    def test_normalized_fuel_rejects_zero_reference(self):
        with pytest.raises(ValueError):
            normalized_fuel(90.0, 0.0)

    def test_improvement_percent(self):
        assert improvement_percent(58.0, 50.0) == pytest.approx(16.0)

    def test_improvement_percent_negative(self):
        assert improvement_percent(45.0, 50.0) == pytest.approx(-10.0)

    def test_improvement_rejects_zero_baseline(self):
        with pytest.raises(ValueError):
            improvement_percent(1.0, 0.0)

    def test_reward_gap_paper_semantics(self):
        # Table 2 UDDS: proposed -754.85, rule-based -849.25 -> ~11.1%.
        gap = reward_gap_percent(-754.85, -849.25)
        assert gap == pytest.approx(11.1, abs=0.1)

    def test_reward_gap_negative_when_proposed_worse(self):
        assert reward_gap_percent(-200.0, -100.0) < 0.0


class TestRenderTable:
    def test_contains_rows_and_columns(self):
        text = render_table("Table 2", ["Proposed", "Rule-based"],
                            {"UDDS": [-754.85, -849.25],
                             "SC03": [-284.14, -319.66]})
        assert "Table 2" in text
        assert "UDDS" in text
        assert "-754.85" in text
        assert "Rule-based" in text

    def test_rejects_ragged_rows(self):
        with pytest.raises(ValueError):
            render_table("t", ["a", "b"], {"r": [1.0]})

    def test_precision(self):
        text = render_table("t", ["a"], {"r": [1.23456]}, precision=3)
        assert "1.235" in text


class TestRenderFigureSeries:
    def test_groups_and_series(self):
        text = render_figure_series(
            "Fig 2", {"with": {"UDDS": 0.9}, "without": {"UDDS": 1.0}})
        assert "Fig 2" in text
        assert "UDDS" in text
        assert "with=0.900" in text
        assert "without=1.000" in text

    def test_missing_group_entries_tolerated(self):
        text = render_figure_series(
            "f", {"a": {"x": 1.0}, "b": {"y": 2.0}})
        assert "x" in text and "y" in text
