"""Tests of the supervised execution layer (:mod:`repro.exec`).

Covers the supervisor failure paths the robustness story hangs on:
worker crash (hard and soft), hang hitting the wall-clock timeout,
retry-then-succeed, retry exhaustion → quarantine, serial-vs-parallel
determinism of batch summaries, and manifest journaling / resume.
"""

import os
import signal
import tempfile
import time
from pathlib import Path

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.control import RuleBasedController
from repro.cycles import CycleSpec, synthesize
from repro.errors import (
    ConfigurationError,
    ExecutionError,
    ManifestError,
)
from repro.exec import (
    BackoffPolicy,
    Supervisor,
    SweepManifest,
    Task,
    TaskFailure,
    decode_payload,
    encode_payload,
    spec_hash,
)
from repro.powertrain import PowertrainSolver
from repro.sim import Simulator, run_batch, run_robustness
from repro.sim.robustness import RobustnessRow
from repro.faults import builtin_scenarios
from repro.vehicle import default_vehicle


def _double(n):
    return n * 2


def _raise_value_error():
    raise ValueError("injected worker failure")


def _hang_forever():
    time.sleep(60)


def _sigterm_proof_hang():
    """A worker that ignores SIGTERM and never returns (forked)."""
    signal.signal(signal.SIGTERM, signal.SIG_IGN)
    while True:
        time.sleep(0.05)


def _double_seven():
    return 14


def _fuzz_tasks(n, must_not_run=False):
    """Deterministic fuzz workload; ``must_not_run`` asserts on execution
    (every task is expected to replay from the journal)."""
    def fn(i):
        if must_not_run:
            raise AssertionError(f"finished task t{i} was re-executed")
        return {"i": i, "x": 0.5 * i}
    return [Task(key=f"t{i}", fn=(lambda i=i: fn(i)), spec={"index": i})
            for i in range(n)]


def _die_hard():
    os._exit(7)


def _task(key, fn, **spec):
    return Task(key=key, fn=fn, spec=spec or {"key": key})


@pytest.fixture(scope="module")
def cycle():
    return synthesize(CycleSpec("x", duration=100, mean_speed_kmh=24.0,
                                max_speed_kmh=48.0, stop_count=2, seed=61))


class TestTaskSpecHash:
    def test_stable_across_insertion_order(self):
        assert spec_hash({"a": 1, "b": 2}) == spec_hash({"b": 2, "a": 1})

    def test_distinguishes_content(self):
        assert spec_hash({"seed": 1}) != spec_hash({"seed": 2})

    def test_rejects_unserialisable_spec(self):
        with pytest.raises(ConfigurationError):
            spec_hash({"fn": _double})


class TestBackoffPolicy:
    def test_deterministic_per_key_and_attempt(self):
        policy = BackoffPolicy()
        assert policy.delay("k", 1) == policy.delay("k", 1)

    def test_grows_exponentially(self):
        policy = BackoffPolicy(base=0.1, factor=2.0, jitter=0.0,
                               max_delay=100.0)
        assert policy.delay("k", 2) == pytest.approx(0.2)
        assert policy.delay("k", 3) == pytest.approx(0.4)

    def test_jitter_decorrelates_tasks(self):
        policy = BackoffPolicy(base=1.0, jitter=1.0, max_delay=100.0)
        assert policy.delay("task-a", 1) != policy.delay("task-b", 1)

    def test_respects_max_delay(self):
        policy = BackoffPolicy(base=1.0, factor=10.0, max_delay=2.0)
        assert policy.delay("k", 5) == 2.0

    def test_rejects_bad_parameters(self):
        with pytest.raises(ConfigurationError):
            BackoffPolicy(factor=0.5)


class TestSupervisorValidation:
    def test_rejects_zero_jobs(self):
        with pytest.raises(ConfigurationError):
            Supervisor(jobs=0)

    def test_rejects_negative_timeout(self):
        with pytest.raises(ConfigurationError):
            Supervisor(timeout=-1.0)

    def test_rejects_negative_retries(self):
        with pytest.raises(ConfigurationError):
            Supervisor(retries=-1)

    def test_rejects_unknown_failure_mode(self):
        with pytest.raises(ConfigurationError):
            Supervisor(failure_mode="explode")

    def test_rejects_duplicate_task_keys(self):
        with pytest.raises(ExecutionError, match="duplicate"):
            Supervisor().run([_task("a", lambda: 1), _task("a", lambda: 2)])


class TestSerialMode:
    def test_runs_in_order_and_in_process(self):
        order = []
        tasks = [_task(f"t{i}", lambda i=i: order.append(i) or i)
                 for i in range(4)]
        sweep = Supervisor().run(tasks)
        # In-process: side effects are visible; serial: submission order.
        assert order == [0, 1, 2, 3]
        assert [sweep.results[f"t{i}"] for i in range(4)] == [0, 1, 2, 3]
        assert sweep.coverage == 1.0

    def test_raise_mode_propagates_original_exception(self):
        supervisor = Supervisor(failure_mode="raise")
        with pytest.raises(ValueError, match="injected worker failure"):
            supervisor.run([_task("bad", _raise_value_error)])

    def test_quarantine_mode_completes_the_sweep(self):
        supervisor = Supervisor(failure_mode="quarantine")
        sweep = supervisor.run([_task("bad", _raise_value_error),
                                _task("good", lambda: 42)])
        assert sweep.results == {"good": 42}
        assert sweep.quarantined == ["bad"]
        failure = sweep.failures[0]
        assert failure.kind == "error"
        assert failure.exception_type == "ValueError"
        assert "injected worker failure" in failure.message
        assert "Traceback" in failure.traceback
        assert failure.attempts == 1

    def test_retry_then_succeed(self, tmp_path):
        marker = tmp_path / "attempted"

        def flaky():
            if not marker.exists():
                marker.touch()
                raise RuntimeError("first attempt dies")
            return "recovered"

        supervisor = Supervisor(retries=1, failure_mode="quarantine",
                                backoff=BackoffPolicy(base=0.001))
        sweep = supervisor.run([_task("flaky", flaky)])
        assert sweep.results == {"flaky": "recovered"}
        assert sweep.attempts["flaky"] == 2
        assert sweep.failures == []

    def test_retry_exhaustion_quarantines(self):
        calls = []

        def always_fails():
            calls.append(1)
            raise RuntimeError("never recovers")

        supervisor = Supervisor(retries=2, failure_mode="quarantine",
                                backoff=BackoffPolicy(base=0.001))
        sweep = supervisor.run([_task("doomed", always_fails)])
        assert len(calls) == 3  # initial attempt + 2 retries
        assert sweep.quarantined == ["doomed"]
        assert sweep.failures[0].attempts == 3


class TestIsolatedWorkers:
    def test_parallel_results_match_serial(self):
        tasks = lambda: [_task(f"n={i}", lambda i=i: _double(i), n=i)
                         for i in range(6)]
        serial = Supervisor().run(tasks())
        parallel = Supervisor(jobs=3, failure_mode="quarantine").run(tasks())
        assert parallel.results == serial.results

    def test_worker_exception_is_structured(self):
        supervisor = Supervisor(jobs=2, failure_mode="quarantine")
        sweep = supervisor.run([_task("bad", _raise_value_error),
                                _task("good", lambda: 1)])
        assert sweep.results == {"good": 1}
        failure = sweep.failures[0]
        assert failure.kind == "error"
        assert failure.exception_type == "ValueError"
        assert "Traceback" in failure.traceback

    def test_hard_crash_is_quarantined_as_crash(self):
        supervisor = Supervisor(jobs=2, failure_mode="quarantine")
        sweep = supervisor.run([_task("dies", _die_hard),
                                _task("good", lambda: 1)])
        assert sweep.results == {"good": 1}
        failure = sweep.failures[0]
        assert failure.kind == "crash"
        assert "exit code 7" in failure.message

    def test_hang_hits_timeout_and_is_killed(self):
        supervisor = Supervisor(jobs=2, timeout=0.5,
                                failure_mode="quarantine")
        start = time.monotonic()
        sweep = supervisor.run([_task("hang", _hang_forever),
                                _task("good", lambda: 1)])
        elapsed = time.monotonic() - start
        assert elapsed < 10.0  # nowhere near the 60 s sleep
        assert sweep.results == {"good": 1}
        failure = sweep.failures[0]
        assert failure.kind == "timeout"
        assert failure.elapsed >= 0.5

    def test_timeout_alone_forces_isolation(self):
        # A serial supervisor cannot preempt a hung task, so any timeout
        # switches to worker isolation even at jobs=1.
        supervisor = Supervisor(jobs=1, timeout=0.5,
                                failure_mode="quarantine")
        assert supervisor.isolated
        sweep = supervisor.run([_task("hang", _hang_forever)])
        assert sweep.quarantined == ["hang"]

    def test_parallel_retry_then_succeed(self, tmp_path):
        marker = tmp_path / "attempted"

        def flaky():
            if not marker.exists():
                marker.touch()
                raise RuntimeError("first attempt dies")
            return "recovered"

        supervisor = Supervisor(jobs=2, retries=1,
                                backoff=BackoffPolicy(base=0.001),
                                failure_mode="quarantine")
        sweep = supervisor.run([_task("flaky", flaky)])
        assert sweep.results == {"flaky": "recovered"}
        assert sweep.attempts["flaky"] == 2

    def test_raise_mode_raises_execution_error(self):
        supervisor = Supervisor(jobs=2, failure_mode="raise")
        with pytest.raises(ExecutionError):
            supervisor.run([_task("bad", _raise_value_error)])


class TestPayloadCodec:
    def test_round_trips_scalars_and_containers(self):
        value = {"a": [1, 2.5, None, True, "s"], "b": (1, 2)}
        assert decode_payload(encode_payload(value)) == value

    def test_round_trips_numpy_arrays_exactly(self):
        arr = np.array([0.1, float(np.pi), -1e300])
        out = decode_payload(encode_payload(arr))
        assert out.dtype == arr.dtype
        np.testing.assert_array_equal(out, arr)

    def test_round_trips_bool_and_int_arrays(self):
        for arr in (np.array([True, False]), np.arange(5, dtype=np.int64)):
            out = decode_payload(encode_payload(arr))
            assert out.dtype == arr.dtype
            np.testing.assert_array_equal(out, arr)

    def test_round_trips_nonfinite_floats(self):
        for value in (float("inf"), float("-inf")):
            assert decode_payload(encode_payload(value)) == value
        assert np.isnan(decode_payload(encode_payload(float("nan"))))

    def test_round_trips_registered_dataclass(self):
        row = RobustnessRow(controller="c", scenario="s", corrected_mpg=51.5,
                            mpg_retention=0.9, window_violations=1,
                            fallback_steps=2, fault_activations=3,
                            faulted_steps=4, final_soc=0.55, finite=True)
        assert decode_payload(encode_payload(row)) == row

    def test_rejects_unregistered_types(self):
        with pytest.raises(ManifestError):
            encode_payload(object())

    def test_decode_rejects_unlisted_dataclass(self):
        with pytest.raises(ManifestError, match="not allowed"):
            decode_payload({"__dataclass__": "os:environ", "fields": {}})


class TestSweepManifest:
    def test_refuses_to_overwrite_existing(self, tmp_path):
        path = tmp_path / "m.jsonl"
        SweepManifest(path)
        with pytest.raises(ManifestError, match="already exists"):
            SweepManifest(path)

    def test_resume_requires_existing_file(self, tmp_path):
        with pytest.raises(ManifestError, match="does not exist"):
            SweepManifest(tmp_path / "missing.jsonl", resume=True)

    def test_resume_skips_finished_work(self, tmp_path):
        path = tmp_path / "m.jsonl"
        supervisor = Supervisor(manifest=SweepManifest(path))
        supervisor.run([_task("a", lambda: 11, n=1),
                        _task("b", lambda: 22, n=2)])

        def must_not_run():
            raise AssertionError("finished task was re-executed")

        resumed = Supervisor(manifest=SweepManifest(path, resume=True))
        sweep = resumed.run([_task("a", must_not_run, n=1),
                             _task("b", must_not_run, n=2)])
        assert sweep.results == {"a": 11, "b": 22}
        assert sorted(sweep.resumed) == ["a", "b"]

    def test_quarantined_tasks_are_retried_on_resume(self, tmp_path):
        path = tmp_path / "m.jsonl"
        supervisor = Supervisor(manifest=SweepManifest(path),
                                failure_mode="quarantine")
        supervisor.run([_task("bad", _raise_value_error, n=1)])
        resumed = Supervisor(manifest=SweepManifest(path, resume=True),
                             failure_mode="quarantine")
        sweep = resumed.run([_task("bad", lambda: "fixed", n=1)])
        assert sweep.results == {"bad": "fixed"}
        assert sweep.resumed == []

    def test_tolerates_torn_final_line(self, tmp_path):
        path = tmp_path / "m.jsonl"
        supervisor = Supervisor(manifest=SweepManifest(path))
        supervisor.run([_task("a", lambda: 1, n=1)])
        with path.open("a") as fh:
            fh.write('{"type": "result", "status": "ok", "ha')  # killed here
        manifest = SweepManifest(path, resume=True)
        assert len(manifest.completed) == 1

    def test_torn_final_line_warns_loudly(self, tmp_path):
        """Crash recovery is tolerated but never silent: the discarded
        partial record must surface as a RuntimeWarning naming the line."""
        path = tmp_path / "m.jsonl"
        supervisor = Supervisor(manifest=SweepManifest(path))
        supervisor.run([_task("a", lambda: 1, n=1)])
        with path.open("a") as fh:
            fh.write('{"type": "result", "st')  # killed mid-append
        with pytest.warns(RuntimeWarning, match=r"m\.jsonl:3.*torn final"):
            manifest = SweepManifest(path, resume=True)
        assert len(manifest.completed) == 1

    def test_clean_resume_does_not_warn(self, tmp_path):
        import warnings as warnings_mod
        path = tmp_path / "m.jsonl"
        supervisor = Supervisor(manifest=SweepManifest(path))
        supervisor.run([_task("a", lambda: 1, n=1)])
        with warnings_mod.catch_warnings():
            warnings_mod.simplefilter("error")
            SweepManifest(path, resume=True)

    def test_rejects_corruption_before_final_line(self, tmp_path):
        path = tmp_path / "m.jsonl"
        path.write_text('not json\n{"type": "manifest", "version": 1}\n')
        with pytest.raises(ManifestError, match="corrupt"):
            SweepManifest(path, resume=True)

    def test_rejects_unknown_version(self, tmp_path):
        path = tmp_path / "m.jsonl"
        path.write_text('{"type": "manifest", "version": 99}\n')
        with pytest.raises(ManifestError, match="version"):
            SweepManifest(path, resume=True)

    def test_failure_records_round_trip(self, tmp_path):
        path = tmp_path / "m.jsonl"
        supervisor = Supervisor(manifest=SweepManifest(path),
                                failure_mode="quarantine")
        supervisor.run([_task("bad", _raise_value_error, n=1)])
        manifest = SweepManifest(path, resume=True)
        failure = next(iter(manifest.quarantined.values()))
        assert isinstance(failure, TaskFailure)
        assert failure.exception_type == "ValueError"

    def test_torn_final_line_is_amputated(self, tmp_path):
        """Tolerating a torn tail on read is not enough: the fragment
        must be truncated out, or the resumed run's first append would
        concatenate onto it and corrupt the journal mid-file."""
        path = tmp_path / "m.jsonl"
        Supervisor(manifest=SweepManifest(path)).run(
            [_task("a", lambda: 1, n=1)])
        with path.open("a") as fh:
            fh.write('{"type": "result", "st')  # killed mid-append
        with pytest.warns(RuntimeWarning, match="torn final"):
            manifest = SweepManifest(path, resume=True)
        Supervisor(manifest=manifest).run(
            [_task("a", lambda: 1, n=1), _task("b", lambda: 2, n=2)])
        # The append after crash recovery landed on a clean boundary:
        # a third open parses every line and warns about nothing.
        import warnings as warnings_mod
        with warnings_mod.catch_warnings():
            warnings_mod.simplefilter("error")
            again = SweepManifest(path, resume=True)
        assert len(again.completed) == 2

    def test_ok_record_without_payload_refuses_resume(self, tmp_path):
        """A parseable line stripped of its payload must never resume as
        a silent None payload."""
        import json
        path = tmp_path / "m.jsonl"
        Supervisor(manifest=SweepManifest(path)).run(
            [_task("a", lambda: 11, n=1), _task("b", lambda: 22, n=2)])
        lines = path.read_text().splitlines()
        record = json.loads(lines[1])
        del record["payload"]
        lines[1] = json.dumps(record, sort_keys=True)
        path.write_text("\n".join(lines) + "\n")
        with pytest.raises(ManifestError, match="no payload"):
            SweepManifest(path, resume=True)

    def test_result_record_without_hash_refuses_resume(self, tmp_path):
        import json
        path = tmp_path / "m.jsonl"
        Supervisor(manifest=SweepManifest(path)).run(
            [_task("a", lambda: 11, n=1)])
        lines = path.read_text().splitlines()
        record = json.loads(lines[1])
        del record["hash"]
        lines[1] = json.dumps(record, sort_keys=True)
        path.write_text("\n".join(lines) + "\n")
        with pytest.raises(ManifestError, match="no spec hash"):
            SweepManifest(path, resume=True)


class TestKillEscalation:
    """SIGTERM → grace → SIGKILL: no worker can outlive its timeout."""

    def test_rejects_nonpositive_grace(self):
        with pytest.raises(ConfigurationError, match="kill_grace"):
            Supervisor(kill_grace=0.0)

    def test_sigterm_ignoring_worker_is_sigkilled(self):
        supervisor = Supervisor(timeout=0.3, kill_grace=0.15)
        start = time.monotonic()
        sweep = supervisor.run([_task("stubborn", _sigterm_proof_hang),
                                _task("fine", _double_seven)])
        elapsed = time.monotonic() - start
        assert sweep.results == {"fine": 14}
        assert sweep.quarantined == ["stubborn"]
        failure = sweep.failures[0]
        assert failure.kind == "timeout"
        assert "SIGKILL" in failure.message
        # Bounded by timeout + grace + joins, never a hang of our own.
        assert elapsed < 15.0

    def test_cooperative_worker_is_not_reported_escalated(self):
        supervisor = Supervisor(timeout=0.3, kill_grace=2.0)
        sweep = supervisor.run([_task("hang", _hang_forever)])
        failure = sweep.failures[0]
        assert failure.kind == "timeout"
        assert "SIGKILL" not in failure.message

    def test_escalation_ticks_sigkill_counter(self, tmp_path):
        from repro.telemetry import Telemetry
        with Telemetry(tmp_path / "t.jsonl") as telemetry:
            supervisor = Supervisor(timeout=0.3, kill_grace=0.15,
                                    telemetry=telemetry)
            supervisor.run([_task("stubborn", _sigterm_proof_hang)])
            assert telemetry.metrics.counter("exec.sigkills").value == 1


class TestManifestFuzz:
    """Property-style journal resilience: random duplication, reordering,
    and tearing must either resume exactly or refuse loudly — never
    resume silently wrong."""

    @staticmethod
    def _journal(tmp_dir, n):
        path = Path(tmp_dir) / "m.jsonl"
        Supervisor(manifest=SweepManifest(path)).run(_fuzz_tasks(n))
        return path

    @staticmethod
    def _expected(n):
        return {f"t{i}": {"i": i, "x": 0.5 * i} for i in range(n)}

    @settings(max_examples=20, deadline=None)
    @given(n=st.integers(2, 6), data=st.data())
    def test_duplicated_and_reordered_lines_resume_exactly(self, n, data):
        with tempfile.TemporaryDirectory() as tmp:
            path = self._journal(tmp, n)
            header, *results = path.read_text().splitlines()
            dup = data.draw(st.lists(st.sampled_from(results), max_size=4))
            order = data.draw(st.permutations(results + dup))
            path.write_text("\n".join([header] + list(order)) + "\n")
            sweep = Supervisor(
                manifest=SweepManifest(path, resume=True)).run(
                _fuzz_tasks(n, must_not_run=True))
            assert sweep.results == self._expected(n)
            assert sorted(sweep.resumed) == sorted(f"t{i}"
                                                   for i in range(n))
            assert sweep.coverage == 1.0

    @settings(max_examples=20, deadline=None)
    @given(n=st.integers(3, 6), target=st.integers(0, 4),
           cut=st.floats(0.05, 0.95))
    def test_torn_midfile_line_refuses_resume(self, n, target, cut):
        with tempfile.TemporaryDirectory() as tmp:
            path = self._journal(tmp, n)
            header, *results = path.read_text().splitlines()
            index = target % (n - 1)  # never the final line
            results[index] = results[index][
                :max(1, int(len(results[index]) * cut))]
            path.write_text("\n".join([header] + results) + "\n")
            with pytest.raises(ManifestError):
                SweepManifest(path, resume=True)

    @settings(max_examples=15, deadline=None)
    @given(n=st.integers(2, 6), cut=st.floats(0.05, 0.95))
    def test_torn_final_line_resumes_exactly(self, n, cut):
        with tempfile.TemporaryDirectory() as tmp:
            path = self._journal(tmp, n)
            header, *results = path.read_text().splitlines()
            torn = results[-1][:max(1, int(len(results[-1]) * cut))]
            path.write_text("\n".join([header] + results[:-1])
                            + "\n" + torn)
            with pytest.warns(RuntimeWarning, match="torn final"):
                manifest = SweepManifest(path, resume=True)
            sweep = Supervisor(manifest=manifest).run(_fuzz_tasks(n))
            assert sweep.results == self._expected(n)
            assert len(sweep.resumed) == n - 1  # torn task re-ran


class TestBatchThroughSupervisor:
    def test_serial_vs_parallel_batch_identical(self, cycle):
        def batch(executor):
            return run_batch(
                lambda solver, seed: RuleBasedController(solver),
                lambda: PowertrainSolver(default_vehicle()),
                cycle, seeds=[0, 1, 2], episodes=1, executor=executor)

        serial = batch(None)
        parallel = batch(Supervisor(jobs=3, failure_mode="quarantine"))
        assert parallel.coverage == 1.0
        assert parallel.summarize() == serial.summarize()

    def test_quarantined_repetition_degrades_gracefully(self, cycle):
        def factory(solver, seed):
            if seed == 1:
                raise ValueError("injected repetition failure")
            return RuleBasedController(solver)

        batch = run_batch(factory,
                          lambda: PowertrainSolver(default_vehicle()),
                          cycle, seeds=[0, 1, 2], episodes=1,
                          executor=Supervisor(failure_mode="quarantine"))
        assert batch.planned == 3
        assert len(batch.evaluations) == 2
        assert batch.coverage == pytest.approx(2 / 3)
        assert batch.failures[0].key == "seed=1"
        assert batch.summarize()["total_fuel_g"].count == 2

    def test_default_executor_still_raises(self, cycle):
        def factory(solver, seed):
            raise ValueError("boom")

        with pytest.raises(ValueError, match="boom"):
            run_batch(factory, lambda: PowertrainSolver(default_vehicle()),
                      cycle, seeds=[0], episodes=1)

    def test_batch_manifest_resume_identical_summaries(self, cycle, tmp_path):
        """A batch killed mid-run and re-launched with the manifest skips
        the finished repetitions and reproduces the uninterrupted
        summaries exactly."""
        path = tmp_path / "batch.jsonl"

        def batch(seeds, executor):
            return run_batch(
                lambda solver, seed: RuleBasedController(solver),
                lambda: PowertrainSolver(default_vehicle()),
                cycle, seeds=seeds, episodes=1, executor=executor)

        uninterrupted = batch([0, 1], None)
        # Simulate a kill after the first repetition: only seed 0 is
        # journaled before the re-launch.
        batch([0], Supervisor(manifest=SweepManifest(path)))
        resumed = batch([0, 1],
                        Supervisor(manifest=SweepManifest(path,
                                                          resume=True)))
        assert resumed.summarize() == uninterrupted.summarize()


class TestRobustnessThroughSupervisor:
    @pytest.fixture(scope="class")
    def scenarios(self):
        everything = builtin_scenarios()
        return {name: everything[name]
                for name in ["aux_spike", "noisy_sensors"]}

    def test_graceful_degradation_with_failing_controller(self, cycle,
                                                          scenarios):
        solver = PowertrainSolver(default_vehicle())
        simulator = Simulator(solver)

        class ExplodingController(RuleBasedController):
            def act(self, *args, **kwargs):
                raise ValueError("controller meltdown")

        controllers = {"good": RuleBasedController(solver),
                       "bad": ExplodingController(solver)}
        report = run_robustness(
            simulator, controllers, scenarios, cycle, seed=1,
            executor=Supervisor(failure_mode="quarantine"))
        # The good controller's full column survives; the bad one's
        # healthy reference is quarantined and its cells are skipped.
        assert {r.controller for r in report.rows} == {"good"}
        assert len(report.rows) == 1 + len(scenarios)
        assert report.planned == 2 * (1 + len(scenarios))
        kinds = {f.key: f.kind for f in report.failures}
        assert kinds["bad/(healthy)"] == "error"
        assert all(kinds[f"bad/{name}"] == "skipped" for name in scenarios)
        assert 0 < report.coverage < 1
        rendered = report.render()
        assert "quarantined" in rendered

    def test_manifest_resume_reproduces_report(self, cycle, scenarios,
                                               tmp_path):
        path = tmp_path / "grid.jsonl"

        def grid(executor):
            solver = PowertrainSolver(default_vehicle())
            simulator = Simulator(solver)
            controllers = {"rb": RuleBasedController(solver)}
            return run_robustness(simulator, controllers, scenarios, cycle,
                                  seed=1, executor=executor)

        uninterrupted = grid(None)
        grid(Supervisor(manifest=SweepManifest(path),
                        failure_mode="quarantine"))
        resumed = grid(Supervisor(manifest=SweepManifest(path, resume=True),
                                  failure_mode="quarantine"))
        assert resumed.rows == uninterrupted.rows
