"""Tests of the road-grade synthesis in :mod:`repro.cycles.grade`."""

import numpy as np
import pytest

from repro.cycles import standard_cycle
from repro.cycles.grade import (
    MAX_GRADE,
    elevation_profile,
    net_zero_terrain,
    rolling_hills,
)
from repro.control import RuleBasedController
from repro.powertrain import PowertrainSolver
from repro.sim import Simulator, evaluate
from repro.vehicle import default_vehicle


@pytest.fixture(scope="module")
def cycle():
    return standard_cycle("SC03")


class TestRollingHills:
    def test_speeds_unchanged(self, cycle):
        hilly = rolling_hills(cycle)
        assert np.array_equal(hilly.speeds, cycle.speeds)

    def test_amplitude_respected(self, cycle):
        hilly = rolling_hills(cycle, amplitude=0.04)
        assert np.max(np.abs(hilly.grades)) <= 0.04 + 1e-12

    def test_grade_constant_while_idle(self, cycle):
        hilly = rolling_hills(cycle)
        idle = cycle.speeds <= 1e-9
        # Consecutive idle samples share a position, hence a grade.
        idx = np.nonzero(idle[:-1] & idle[1:])[0]
        assert len(idx) > 0
        assert np.allclose(hilly.grades[idx], hilly.grades[idx + 1])

    def test_rejects_excessive_amplitude(self, cycle):
        with pytest.raises(ValueError):
            rolling_hills(cycle, amplitude=MAX_GRADE + 0.01)

    def test_rejects_bad_wavelength(self, cycle):
        with pytest.raises(ValueError):
            rolling_hills(cycle, wavelength=0.0)

    def test_wavelength_in_distance(self, cycle):
        hilly = rolling_hills(cycle, amplitude=0.03, wavelength=500.0)
        elev = elevation_profile(hilly)
        # Peak-to-peak elevation of a 500 m sine at 0.03 rad is ~4.8 m;
        # allow generous tolerance for sampling.
        assert 1.0 < np.max(elev) - np.min(elev) < 15.0


class TestNetZeroTerrain:
    def test_elevation_closes(self, cycle):
        terrain = net_zero_terrain(cycle, seed=4)
        elev = elevation_profile(terrain)
        span = np.max(elev) - np.min(elev)
        assert abs(elev[-1]) < max(0.15 * span, 0.5)

    def test_grades_bounded(self, cycle):
        terrain = net_zero_terrain(cycle, roughness=0.05, seed=4)
        assert np.max(np.abs(terrain.grades)) <= MAX_GRADE + 1e-12

    def test_deterministic(self, cycle):
        a = net_zero_terrain(cycle, seed=9)
        b = net_zero_terrain(cycle, seed=9)
        assert np.array_equal(a.grades, b.grades)

    def test_different_seeds_differ(self, cycle):
        a = net_zero_terrain(cycle, seed=1)
        b = net_zero_terrain(cycle, seed=2)
        assert not np.array_equal(a.grades, b.grades)

    def test_rejects_bad_roughness(self, cycle):
        with pytest.raises(ValueError):
            net_zero_terrain(cycle, roughness=0.0)


class TestGradeThroughSimulation:
    def test_hills_cost_fuel(self, cycle):
        # Driving the same speed trace over hills must burn more fuel than
        # flat ground (grade work is lost to the grade ledger + losses).
        solver = PowertrainSolver(default_vehicle())
        sim = Simulator(solver)
        flat = evaluate(sim, RuleBasedController(solver), cycle)
        hilly = evaluate(sim, RuleBasedController(solver),
                         rolling_hills(cycle, amplitude=0.05))
        assert hilly.corrected_fuel() > flat.corrected_fuel() * 1.02

    def test_power_demand_reflects_grade(self, cycle):
        solver = PowertrainSolver(default_vehicle())
        uphill = float(solver.dynamics.power_demand(15.0, 0.0, 0.05))
        flat = float(solver.dynamics.power_demand(15.0, 0.0, 0.0))
        downhill = float(solver.dynamics.power_demand(15.0, 0.0, -0.05))
        assert uphill > flat > downhill
