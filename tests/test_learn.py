"""Tests of the resilient online-learning loop (:mod:`repro.learn`).

Covers the acceptance criteria of the online-learning tentpole: the
Hypothesis fuzz guarantee that any truncation, field drop, type
mutation, or non-finite value in an experience record surfaces as a
structured :class:`~repro.errors.ExperienceError` (never a crash, never
silent garbage); journal torn-tail amputation and its idempotence;
content-hash cursors that re-read nothing twice and refuse a journal
rewritten underneath them; oldest-first backpressure shedding; the
learner's kill-and-resume bit-identity contract; the regression
watchdog; the guarded promotion pipeline — including the canary edge
cases (zero-decision cohort, starved rollout, a no-op swap of an
identical candidate that must NOT reset the watchdog baseline) — and
the loop's vetted-incumbent pinning across restarts.
"""

import json
import math

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.control.rl_controller import build_rl_controller
from repro.errors import ExperienceError, PersistenceError, ServeError
from repro.learn import (
    ExperienceRecord,
    ExperienceStream,
    OnlineLearner,
    OnlineLearnerConfig,
    OnlineLearningLoop,
    PromotionPipeline,
    RegressionWatchdog,
    decode_record,
    encode_record,
    read_journal,
)
from repro.learn.loop import STATE_NAME
from repro.powertrain import PowertrainSolver
from repro.rl.persistence import _fingerprint
from repro.serve import (
    CanaryConfig,
    FleetConfig,
    PolicyRegistry,
    PolicyServer,
)
from repro.vehicle import default_vehicle


@pytest.fixture(scope="module")
def policy():
    """``(table, fingerprint)`` of one deterministic non-trivial policy."""
    solver = PowertrainSolver(default_vehicle())
    agent = build_rl_controller(solver, seed=23).agent
    rng = np.random.default_rng(23)
    agent.learner.qtable.values[:] = rng.normal(
        size=agent.learner.qtable.values.shape)
    return agent.learner.qtable.values.copy(), _fingerprint(agent)


def _registry(root, table, fingerprint, versions=1, bump=0.25):
    registry = PolicyRegistry(root / "registry")
    for i in range(versions):
        registry.publish_table(table + bump * i, fingerprint)
    return registry


def _records(n, num_states=12, num_actions=4, seed=0, version=1):
    rng = np.random.default_rng(seed)
    return [ExperienceRecord(
        state=int(rng.integers(num_states)),
        action=int(rng.integers(num_actions)),
        reward=round(float(rng.normal()), 6),
        next_state=int(rng.integers(num_states)),
        policy_version=version, vehicle_id=i, step=0) for i in range(n)]


def _write_journal(directory, records, shard=0):
    with ExperienceStream(directory, shard=shard) as stream:
        for rec in records:
            stream.offer(rec)
        stream.flush()
        return stream.path


_VALID = encode_record(ExperienceRecord(
    state=3, action=1, reward=0.5, next_state=4,
    policy_version=2, vehicle_id=7, step=11))


class TestRecordCodec:
    def test_round_trip(self):
        rec = ExperienceRecord(state=3, action=1, reward=0.5, next_state=4,
                               policy_version=2, vehicle_id=7, step=11)
        assert decode_record(encode_record(rec)) == rec

    def test_reward_is_coerced_to_float(self):
        rec = ExperienceRecord(state=0, action=0, reward=1, next_state=0,
                               policy_version=1, vehicle_id=0, step=0)
        assert isinstance(rec.reward, float)

    @pytest.mark.parametrize("field,value", [
        ("state", -1), ("action", 1.5), ("next_state", True),
        ("policy_version", 0), ("vehicle_id", "x"), ("step", -3),
        ("reward", float("nan")), ("reward", float("inf")),
        ("reward", "much"),
    ])
    def test_invalid_fields_are_structured(self, field, value):
        kwargs = dict(state=0, action=0, reward=0.0, next_state=0,
                      policy_version=1, vehicle_id=0, step=0)
        kwargs[field] = value
        with pytest.raises(ExperienceError):
            ExperienceRecord(**kwargs)

    def test_version_mismatch_is_structured(self):
        payload = json.loads(_VALID)
        payload["v"] = 99
        with pytest.raises(ExperienceError, match="version"):
            decode_record(json.dumps(payload))

    def test_unknown_fields_are_structured(self):
        payload = json.loads(_VALID)
        payload["extra"] = 1
        with pytest.raises(ExperienceError, match="unknown"):
            decode_record(json.dumps(payload))


class TestRecordCodecFuzz:
    """Any mangling of a valid line must surface as ExperienceError —
    never an unstructured crash, never a silently-wrong record."""

    @settings(max_examples=60, deadline=None)
    @given(cut=st.integers(min_value=0, max_value=len(_VALID) - 1))
    def test_any_truncation_is_structured(self, cut):
        with pytest.raises(ExperienceError):
            decode_record(_VALID[:cut])

    @settings(max_examples=30, deadline=None)
    @given(dropped=st.sampled_from(sorted(json.loads(_VALID))))
    def test_any_field_drop_is_structured(self, dropped):
        payload = json.loads(_VALID)
        del payload[dropped]
        with pytest.raises(ExperienceError):
            decode_record(json.dumps(payload))

    @settings(max_examples=80, deadline=None)
    @given(field=st.sampled_from(sorted(set(json.loads(_VALID)) - {"v"})),
           value=st.one_of(st.none(), st.booleans(), st.text(max_size=4),
                           st.floats(), st.lists(st.integers(), max_size=2)))
    def test_any_type_mutation_is_structured_or_equivalent(self, field,
                                                           value):
        payload = json.loads(_VALID)
        payload[field] = value
        try:
            rec = decode_record(json.dumps(payload))
        except ExperienceError:
            return
        # The only acceptable non-error: a numeric reward equal in value
        # (e.g. 0.5 -> 0.5); everything else would be silent garbage.
        assert field == "reward" and isinstance(value, float)
        assert math.isfinite(value) and rec.reward == value

    @settings(max_examples=60, deadline=None)
    @given(line=st.text(max_size=80))
    def test_random_garbage_is_structured(self, line):
        try:
            rec = decode_record(line)
        except ExperienceError:
            return
        assert decode_record(encode_record(rec)) == rec

    def test_nonfinite_json_tokens_are_structured(self):
        for token in ("NaN", "Infinity", "-Infinity"):
            with pytest.raises(ExperienceError):
                decode_record(_VALID.replace("0.5", token))


class TestJournal:
    def test_write_read_round_trip(self, tmp_path):
        records = _records(9)
        path = _write_journal(tmp_path, records)
        piece = read_journal(path)
        assert piece.records == records
        assert piece.quarantined == 0 and piece.amputated_bytes == 0
        assert piece.cursor["offset"] == path.stat().st_size

    def test_cursor_resumes_exactly_once(self, tmp_path):
        records = _records(10)
        path = _write_journal(tmp_path, records[:6])
        first = read_journal(path)
        assert first.records == records[:6]
        # Nothing new: the cursor consumes nothing twice.
        again = read_journal(path, first.cursor)
        assert again.records == []
        _write_journal(tmp_path, records[6:])
        rest = read_journal(path, again.cursor)
        assert rest.records == records[6:]

    def test_torn_tail_is_amputated_idempotently(self, tmp_path):
        records = _records(5)
        path = _write_journal(tmp_path, records)
        intact = path.stat().st_size
        with open(path, "ab") as fh:
            fh.write(encode_record(_records(1, seed=9)[0])[:17]
                     .encode("utf-8"))
        with pytest.warns(RuntimeWarning, match="amputating"):
            piece = read_journal(path)
        assert piece.records == records and piece.amputated_bytes == 17
        assert path.stat().st_size == intact
        # Second read: physically truncated already, nothing to warn about.
        import warnings as warnings_module
        with warnings_module.catch_warnings():
            warnings_module.simplefilter("error")
            again = read_journal(path, piece.cursor)
        assert again.records == [] and again.amputated_bytes == 0

    def test_interior_corruption_is_quarantined(self, tmp_path):
        records = _records(6)
        path = _write_journal(tmp_path, records[:3])
        with open(path, "ab") as fh:
            fh.write(b'{"not": "an experience record"}\n')
            fh.write(b"\x80\xffgarbage\n")
        _write_journal(tmp_path, records[3:])
        piece = read_journal(path)
        assert piece.records == records
        assert piece.quarantined == 2

    def test_rewrite_under_cursor_is_refused(self, tmp_path):
        path = _write_journal(tmp_path, _records(4))
        cursor = read_journal(path).cursor
        body = path.read_bytes()
        path.write_bytes(body.replace(b'"step": 0', b'"step": 1', 1))
        with pytest.raises(ExperienceError, match="rewritten"):
            read_journal(path, cursor)

    def test_foreign_or_headerless_file_is_refused(self, tmp_path):
        alien = tmp_path / "alien.jsonl"
        alien.write_text('{"format": "something-else", "v": 1}\n')
        with pytest.raises(ExperienceError, match="format"):
            read_journal(alien)
        empty = tmp_path / "empty.jsonl"
        empty.write_bytes(b"")
        with pytest.raises(ExperienceError, match="header"):
            read_journal(empty)

    def test_backpressure_sheds_oldest_first(self, tmp_path):
        records = _records(10)
        with ExperienceStream(tmp_path, buffer_limit=4) as stream:
            for rec in records:
                stream.offer(rec)
            assert stream.shed == 6 and stream.buffered == 4
            stream.flush()
            path = stream.path
        # The freshest experience survived; the stalest was dropped.
        assert read_journal(path).records == records[-4:]

    def test_invalid_stream_configs_are_structured(self, tmp_path):
        with pytest.raises(ExperienceError):
            ExperienceStream(tmp_path, shard=-1)
        with pytest.raises(ExperienceError):
            ExperienceStream(tmp_path, buffer_limit=0)


class TestLearner:
    _FP = {"kind": "test", "seed": 1}

    def _table(self, num_states=12, num_actions=4, seed=3):
        return np.random.default_rng(seed).normal(
            size=(num_states, num_actions))

    def test_ingest_applies_q_updates(self, tmp_path):
        table = self._table()
        _write_journal(tmp_path / "j", _records(20))
        learner = OnlineLearner(self._FP, table)
        report = learner.ingest(tmp_path / "j")
        assert report.records == 20 and report.journals == 1
        assert not np.array_equal(learner.table, table)
        assert np.all(np.isfinite(learner.table))

    @pytest.mark.parametrize("double_q", [False, True])
    def test_kill_and_resume_is_bit_identical(self, tmp_path, double_q):
        table = self._table()
        config = OnlineLearnerConfig(double_q=double_q)
        records = _records(30)
        _write_journal(tmp_path / "ref", records)
        reference = OnlineLearner(self._FP, table, config=config)
        reference.ingest(tmp_path / "ref")

        # The same records arrive in three bursts; the learner is
        # "killed" (dropped) and resumed from its checkpoint between
        # each.  The final table must match the uninterrupted run bit
        # for bit — the updates are batch-boundary invariant.
        ckpt = tmp_path / "ckpt.json"
        learner = OnlineLearner(self._FP, table, config=config,
                                checkpoint_path=ckpt)
        for lo, hi in ((0, 11), (11, 17), (17, 30)):
            _write_journal(tmp_path / "live", records[lo:hi])
            learner.ingest(tmp_path / "live")
            learner = OnlineLearner.resume(ckpt)
        assert np.array_equal(learner.table, reference.table)
        assert learner.records == 30

    def test_missing_checkpoint_is_experience_error(self, tmp_path):
        with pytest.raises(ExperienceError, match="nothing to resume"):
            OnlineLearner.resume(tmp_path / "absent.json")

    def test_corrupt_checkpoint_is_structured(self, tmp_path):
        ckpt = tmp_path / "ckpt.json"
        learner = OnlineLearner(self._FP, self._table(),
                                checkpoint_path=ckpt)
        _write_journal(tmp_path / "j", _records(5))
        learner.ingest(tmp_path / "j")
        body = ckpt.read_bytes()
        payload = json.loads(body)
        b64 = payload["q"]["b64"]
        payload["q"]["b64"] = ("B" if b64[0] != "B" else "C") + b64[1:]
        ckpt.write_bytes(json.dumps(payload).encode())
        with pytest.raises(PersistenceError, match="integrity"):
            OnlineLearner.resume(ckpt)
        ckpt.write_bytes(b"not json at all")
        with pytest.raises(PersistenceError, match="JSON"):
            OnlineLearner.resume(ckpt)

    def test_out_of_table_records_are_excluded(self, tmp_path):
        table = self._table(num_states=4, num_actions=2)
        good = _records(6, num_states=4, num_actions=2)
        foreign = _records(3, num_states=50, num_actions=9, seed=8)
        _write_journal(tmp_path / "j", good + foreign)
        learner = OnlineLearner(self._FP, table)
        report = learner.ingest(tmp_path / "j")
        assert report.records + report.excluded == 9
        assert report.excluded >= 3

    def test_non_finite_seed_table_is_refused(self):
        table = self._table()
        table[0, 0] = np.nan
        with pytest.raises(ExperienceError, match="non-finite"):
            OnlineLearner(self._FP, table)

    def test_invalid_configs_are_structured(self):
        with pytest.raises(ExperienceError):
            OnlineLearnerConfig(learning_rate=0.0)
        with pytest.raises(ExperienceError):
            OnlineLearnerConfig(discount=1.0)

    def test_publish_round_trips_through_registry(self, tmp_path, policy):
        table, fingerprint = policy
        registry = _registry(tmp_path, table, fingerprint)
        learner = OnlineLearner(fingerprint, table)
        _write_journal(tmp_path / "j",
                       _records(10, num_states=table.shape[0],
                                num_actions=table.shape[1]))
        learner.ingest(tmp_path / "j")
        version = learner.publish(registry)
        assert np.array_equal(np.array(registry.load(version).table),
                              learner.table)


class _Run:
    """A minimal FleetResult stand-in for watchdog unit tests."""

    def __init__(self, mean_reward, interventions=0, decisions=1000):
        self.mean_reward = mean_reward
        self.interventions = interventions
        self.decisions = decisions


class TestRegressionWatchdog:
    def test_thin_baseline_never_alerts(self):
        dog = RegressionWatchdog(min_runs=2)
        dog.observe(_Run(1.0))
        assert dog.check(_Run(-100.0)) is None

    def test_reward_collapse_alerts(self):
        dog = RegressionWatchdog(sigmas=2.0)
        for reward in (1.00, 1.01, 0.99, 1.02):
            dog.observe(_Run(reward))
        assert dog.check(_Run(1.0)) is None
        alert = dog.check(_Run(0.2))
        assert alert is not None and "sigma" in alert

    def test_intervention_excess_alerts(self):
        dog = RegressionWatchdog(intervention_margin=0.05)
        for _ in range(3):
            dog.observe(_Run(1.0, interventions=10))
        alert = dog.check(_Run(1.0, interventions=200))
        assert alert is not None and "intervention" in alert

    def test_zero_decision_runs_carry_no_evidence(self):
        dog = RegressionWatchdog()
        dog.observe(_Run(1.0, decisions=0))
        assert dog.runs == 0
        for _ in range(3):
            dog.observe(_Run(1.0))
        assert dog.check(_Run(-5.0, decisions=0)) is None

    def test_reset_forgets_the_baseline(self):
        dog = RegressionWatchdog()
        for _ in range(3):
            dog.observe(_Run(1.0))
        dog.reset()
        assert dog.runs == 0 and dog.check(_Run(-5.0)) is None

    def test_invalid_thresholds_are_structured(self):
        with pytest.raises(ExperienceError):
            RegressionWatchdog(sigmas=0.0)
        with pytest.raises(ExperienceError):
            RegressionWatchdog(min_runs=1)


class TestPromotionPipeline:
    def _pipeline(self, registry, **kwargs):
        server = PolicyServer(registry)
        server.activate(registry.load(1))
        kwargs.setdefault("fleet_config",
                          FleetConfig(vehicles=96, steps=20, seed=5))
        kwargs.setdefault("canary_config",
                          CanaryConfig(fraction=0.3, min_samples=32,
                                       sigmas=2.0, decision_budget=600,
                                       intervention_margin=0.02))
        kwargs.setdefault("round_steps", 10)
        return server, PromotionPipeline(server, registry, **kwargs)

    def test_healthy_candidate_promotes_and_resets_baseline(self, tmp_path,
                                                            policy):
        table, fingerprint = policy
        registry = _registry(tmp_path, table, fingerprint)
        # A candidate with identical greedy behaviour but different bytes.
        registry.publish_table(table + 1e-9, fingerprint)
        server, pipeline = self._pipeline(registry)
        for _ in range(3):
            pipeline.watchdog.observe(_Run(1.0))
        report = pipeline.promote(2)
        assert report.outcome == "promoted"
        assert server.active_version == 2
        assert report.canary_decisions > 0
        assert report.baseline_runs == 0  # a new incumbent: baseline reset

    def test_identical_candidate_noop_keeps_baseline(self, tmp_path,
                                                     policy):
        table, fingerprint = policy
        registry = _registry(tmp_path, table, fingerprint)
        registry.publish_table(table, fingerprint)  # bit-identical v2
        server, pipeline = self._pipeline(registry)
        for _ in range(3):
            pipeline.watchdog.observe(_Run(1.0))
        report = pipeline.promote(2)
        assert report.outcome == "noop"
        assert report.baseline_runs == 3  # the incumbent did not change
        assert pipeline.watchdog.runs == 3
        assert server.active_version == 2

    def test_regressed_candidate_rolls_back_with_recovery(self, tmp_path,
                                                          policy):
        table, fingerprint = policy
        registry = _registry(tmp_path, table, fingerprint)
        registry.publish_table(-table, fingerprint)
        server, pipeline = self._pipeline(registry)
        probe = np.arange(32)
        before = server.decide(probe)
        report = pipeline.promote(2)
        assert report.outcome == "rolled_back"
        assert report.incumbent_intact is True
        assert report.recovery_s is not None and report.recovery_s >= 0.0
        assert server.active_version == 1
        assert np.array_equal(server.decide(probe), before)

    def test_unloadable_candidate_is_refused(self, tmp_path, policy):
        table, fingerprint = policy
        registry = _registry(tmp_path, table, fingerprint)
        server, pipeline = self._pipeline(registry)
        report = pipeline.promote(99)
        assert report.outcome == "refused"
        assert server.active_version == 1

    def test_zero_decision_cohort_aborts_not_hangs(self, tmp_path, policy):
        table, fingerprint = policy
        registry = _registry(tmp_path, table, fingerprint)
        registry.publish_table(table + 0.5, fingerprint)
        # A cohort so small no vehicle is assigned to it: the rollout
        # can never reach a verdict and must be aborted, not spun on.
        server, pipeline = self._pipeline(
            registry,
            fleet_config=FleetConfig(vehicles=6, steps=10, seed=5),
            canary_config=CanaryConfig(fraction=0.001, min_samples=2,
                                       decision_budget=50),
            max_rounds=2)
        report = pipeline.promote(2)
        assert report.outcome == "aborted"
        assert report.canary_decisions == 0
        assert report.incumbent_intact is True
        assert server.active_version == 1 and server.canary is None

    def test_promotion_without_incumbent_raises(self, tmp_path, policy):
        table, fingerprint = policy
        registry = _registry(tmp_path, table, fingerprint)
        server = PolicyServer(registry)  # nothing activated
        pipeline = PromotionPipeline(server, registry)
        with pytest.raises(ServeError, match="incumbent"):
            pipeline.promote(1)


class TestOnlineLearningLoop:
    def _seeded_registry(self, tmp_path, policy):
        table, fingerprint = policy
        return _registry(tmp_path, table, fingerprint)

    def test_loop_rounds_stream_ingest_and_promote(self, tmp_path, policy):
        registry = self._seeded_registry(tmp_path, policy)
        with OnlineLearningLoop(
                registry, tmp_path / "wd",
                fleet_config=FleetConfig(vehicles=48, steps=10, seed=3),
                promote_every=2) as loop:
            report = loop.run(4)
        assert len(report.rounds) == 4
        for rnd in report.rounds:
            assert rnd.decisions > 0
            assert rnd.records_streamed > 0
            assert rnd.records_ingested == rnd.records_streamed
            assert rnd.quarantined == 0
        assert report.rounds[1].promotion is not None
        assert report.final_version >= 1

    def test_resume_pins_the_vetted_incumbent(self, tmp_path, policy):
        table, fingerprint = policy
        registry = self._seeded_registry(tmp_path, policy)
        config = FleetConfig(vehicles=32, steps=8, seed=3)
        with OnlineLearningLoop(registry, tmp_path / "wd",
                                fleet_config=config,
                                promote_every=10) as loop:
            loop.run(1)
            vetted = loop.server.active_version
        # An unvetted candidate lands in the registry after the crash
        # (e.g. published but never promoted).  A resumed loop must NOT
        # serve it: the pinned incumbent wins over activate_latest.
        registry.publish_table(-table, fingerprint)
        with OnlineLearningLoop(registry, tmp_path / "wd",
                                fleet_config=config, resume=True) as loop:
            assert loop.server.active_version == vetted
        assert json.loads(
            (tmp_path / "wd" / STATE_NAME).read_text())["version"] == vetted

    def test_corrupt_state_file_is_structured(self, tmp_path, policy):
        registry = self._seeded_registry(tmp_path, policy)
        config = FleetConfig(vehicles=16, steps=5, seed=3)
        workdir = tmp_path / "wd"
        with OnlineLearningLoop(registry, workdir, fleet_config=config):
            pass
        (workdir / STATE_NAME).write_text('{"version": "three"}')
        with pytest.raises(PersistenceError, match="state"):
            OnlineLearningLoop(registry, workdir, fleet_config=config,
                               resume=True)

    def test_empty_registry_is_a_serve_error(self, tmp_path):
        with pytest.raises(ServeError, match="publish one first"):
            OnlineLearningLoop(PolicyRegistry(tmp_path / "empty"),
                               tmp_path / "wd")

    def test_invalid_loop_configs_are_structured(self, tmp_path, policy):
        registry = self._seeded_registry(tmp_path, policy)
        with pytest.raises(ExperienceError):
            OnlineLearningLoop(registry, tmp_path / "wd", promote_every=0)
        with OnlineLearningLoop(registry, tmp_path / "wd") as loop:
            with pytest.raises(ExperienceError):
                loop.run(0)
