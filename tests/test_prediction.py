"""Tests of the driving-profile predictors (paper Section 4.2)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.prediction import (
    ExponentialPredictor,
    MarkovPredictor,
    MLPPredictor,
    PredictionQuantizer,
)


class TestExponentialPredictor:
    def test_eq12_recurrence(self):
        # pre_i = (1 - alpha) pre_{i-1} + alpha meas_{i-1}, exactly.
        p = ExponentialPredictor(learning_rate=0.4, initial=1000.0)
        p.update(2000.0)
        assert p.predict() == pytest.approx(0.6 * 1000.0 + 0.4 * 2000.0)

    def test_initial_prediction(self):
        p = ExponentialPredictor(initial=500.0)
        assert p.predict() == 500.0

    def test_converges_to_constant_signal(self):
        p = ExponentialPredictor(learning_rate=0.3)
        for _ in range(200):
            p.update(4200.0)
        assert p.predict() == pytest.approx(4200.0, rel=1e-6)

    def test_alpha_one_tracks_exactly(self):
        p = ExponentialPredictor(learning_rate=1.0)
        p.update(123.0)
        assert p.predict() == 123.0

    def test_rejects_bad_alpha(self):
        with pytest.raises(ValueError):
            ExponentialPredictor(learning_rate=0.0)
        with pytest.raises(ValueError):
            ExponentialPredictor(learning_rate=1.5)

    def test_reset_restores_initial(self):
        p = ExponentialPredictor(initial=7.0)
        p.update(100.0)
        p.reset()
        assert p.predict() == 7.0

    def test_observe_and_predict(self):
        p = ExponentialPredictor(learning_rate=0.5, initial=0.0)
        assert p.observe_and_predict(10.0) == pytest.approx(5.0)

    @given(st.floats(min_value=0.01, max_value=1.0),
           st.lists(st.floats(min_value=-1e5, max_value=1e5), min_size=1,
                    max_size=50))
    def test_prediction_bounded_by_history_extremes(self, alpha, values):
        p = ExponentialPredictor(learning_rate=alpha, initial=values[0])
        for v in values:
            p.update(v)
        lo, hi = min(values), max(values)
        assert lo - 1e-6 <= p.predict() <= hi + 1e-6

    def test_smooths_oscillation(self):
        # A small alpha must damp an alternating signal toward its mean.
        p = ExponentialPredictor(learning_rate=0.1, initial=0.0)
        for k in range(500):
            p.update(1000.0 if k % 2 == 0 else -1000.0)
        assert abs(p.predict()) < 300.0


class TestMarkovPredictor:
    def test_learns_deterministic_chain(self):
        p = MarkovPredictor(power_min=0.0, power_max=100.0, num_bins=4,
                            prior_count=0.0)
        # Feed a fixed repeating pattern; prediction should land near the
        # successor bin's centre.
        pattern = [10.0, 40.0, 60.0, 90.0]
        for _ in range(50):
            for v in pattern:
                p.update(v)
        p.update(10.0)  # chain now in bin of 10 -> next should be ~40
        assert p.predict() == pytest.approx(37.5, abs=15.0)

    def test_reset_keeps_statistics(self):
        p = MarkovPredictor(num_bins=4)
        for v in [0.0, 10_000.0] * 20:
            p.update(v)
        before = p.predict()
        p.reset()
        p.update(0.0)
        # Transitions survived the reset.
        assert p.predict() != 0.0 or before != 0.0

    def test_forget_clears_statistics(self):
        p = MarkovPredictor(num_bins=4, prior_count=0.5)
        for v in [0.0, 10_000.0] * 20:
            p.update(v)
        p.forget()
        # With uniform counts the prediction is the mean of bin centres.
        assert p.predict() == pytest.approx(0.0, abs=1.0)

    def test_rejects_bad_config(self):
        with pytest.raises(ValueError):
            MarkovPredictor(power_min=10.0, power_max=0.0)
        with pytest.raises(ValueError):
            MarkovPredictor(num_bins=1)
        with pytest.raises(ValueError):
            MarkovPredictor(prior_count=-1.0)

    def test_out_of_range_clipped(self):
        p = MarkovPredictor(power_min=-10.0, power_max=10.0, num_bins=4)
        p.update(1e9)  # must not crash; lands in the top bin
        assert np.isfinite(p.predict())


class TestMLPPredictor:
    def test_learns_constant_signal(self):
        p = MLPPredictor(window=4, hidden=8, learning_rate=0.05)
        for _ in range(800):
            p.update(9000.0)
        assert p.predict() == pytest.approx(9000.0, rel=0.15)

    def test_prediction_zero_before_history(self):
        assert MLPPredictor().predict() == 0.0

    def test_reset_clears_history_keeps_weights(self):
        p = MLPPredictor(window=4)
        for _ in range(400):
            p.update(5000.0)
        trained = p.predict()
        p.reset()
        assert p.predict() == 0.0
        for _ in range(4):
            p.update(5000.0)
        assert p.predict() == pytest.approx(trained, rel=0.2)

    def test_rejects_bad_config(self):
        with pytest.raises(ValueError):
            MLPPredictor(window=0)
        with pytest.raises(ValueError):
            MLPPredictor(learning_rate=0.0)
        with pytest.raises(ValueError):
            MLPPredictor(power_scale=0.0)

    def test_deterministic_given_seed(self):
        a, b = MLPPredictor(seed=3), MLPPredictor(seed=3)
        for v in [100.0, 5000.0, -2000.0] * 30:
            a.update(v)
            b.update(v)
        assert a.predict() == pytest.approx(b.predict())


class TestPredictionQuantizer:
    def test_default_three_levels(self):
        q = PredictionQuantizer()
        assert q.num_levels == 3
        assert q(-5000.0) == 0
        assert q(3000.0) == 1
        assert q(20_000.0) == 2

    def test_boundary_goes_up(self):
        q = PredictionQuantizer(thresholds=(0.0,))
        assert q(0.0) == 1

    def test_rejects_unsorted_thresholds(self):
        with pytest.raises(ValueError):
            PredictionQuantizer(thresholds=(5.0, 1.0))

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            PredictionQuantizer(thresholds=())

    @given(st.floats(min_value=-1e6, max_value=1e6))
    def test_level_always_valid(self, x):
        q = PredictionQuantizer()
        assert 0 <= q(x) < q.num_levels
