"""Tests of the training callbacks in :mod:`repro.sim.callbacks`."""

import pytest

from repro.control.rl_controller import build_rl_controller
from repro.cycles import CycleSpec, synthesize
from repro.powertrain import PowertrainSolver
from repro.rl.persistence import load_policy
from repro.sim import Simulator
from repro.sim.callbacks import (
    BestPolicyCheckpoint,
    CallbackList,
    EarlyStopping,
    ProgressPrinter,
    StopTraining,
    train_with_callbacks,
)
from repro.vehicle import default_vehicle


@pytest.fixture(scope="module")
def cycle():
    return synthesize(CycleSpec("cb", duration=90, mean_speed_kmh=24.0,
                                max_speed_kmh=45.0, stop_count=1, seed=71))


def fresh(seed=5):
    solver = PowertrainSolver(default_vehicle())
    return Simulator(solver), build_rl_controller(solver, seed=seed)


class TestProgressPrinter:
    def test_prints_on_interval(self, cycle):
        lines = []
        sim, ctrl = fresh()
        train_with_callbacks(sim, ctrl, cycle, episodes=4,
                             callbacks=[ProgressPrinter(
                                 every=2, printer=lines.append)])
        assert len(lines) == 2
        assert "episode    2" in lines[0]

    def test_rejects_bad_interval(self):
        with pytest.raises(ValueError):
            ProgressPrinter(every=0)


class TestEarlyStopping:
    def test_stops_on_plateau(self, cycle):
        sim, ctrl = fresh()
        stopper = EarlyStopping(patience=2, min_delta=1e9)  # never improves
        run = train_with_callbacks(sim, ctrl, cycle, episodes=20,
                                   callbacks=[stopper])
        # First episode sets best; 2 stale episodes then stop -> 3 total.
        assert len(run.episodes) == 3
        assert stopper.stopped_at == 2
        assert run.evaluation is not None

    def test_continues_while_improving(self, cycle):
        sim, ctrl = fresh()
        stopper = EarlyStopping(patience=3, min_delta=0.0)
        run = train_with_callbacks(sim, ctrl, cycle, episodes=6,
                                   callbacks=[stopper])
        assert len(run.episodes) >= 3

    def test_rejects_bad_config(self):
        with pytest.raises(ValueError):
            EarlyStopping(patience=0)
        with pytest.raises(ValueError):
            EarlyStopping(min_delta=-1.0)


class TestBestPolicyCheckpoint:
    def test_saves_and_reloads(self, cycle, tmp_path):
        sim, ctrl = fresh()
        ckpt = BestPolicyCheckpoint(ctrl.agent, tmp_path / "best")
        train_with_callbacks(sim, ctrl, cycle, episodes=3, callbacks=[ckpt])
        assert ckpt.saves >= 1
        assert (tmp_path / "best.npz").exists()
        # Reload into a fresh compatible agent.
        solver = PowertrainSolver(default_vehicle())
        fresh_agent = build_rl_controller(solver, seed=9).agent
        load_policy(fresh_agent, tmp_path / "best")


class TestCallbackList:
    def test_invokes_all_in_order(self, cycle):
        order = []
        sim, ctrl = fresh()
        train_with_callbacks(
            sim, ctrl, cycle, episodes=1,
            callbacks=[lambda e, r: order.append("a"),
                       lambda e, r: order.append("b")])
        assert order == ["a", "b"]

    def test_stop_training_propagates(self, cycle):
        def bomb(episode, result):
            raise StopTraining("now")

        sim, ctrl = fresh()
        run = train_with_callbacks(sim, ctrl, cycle, episodes=10,
                                   callbacks=[bomb])
        assert len(run.episodes) == 1
