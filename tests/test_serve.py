"""Tests of the policy serving layer (:mod:`repro.serve`).

Covers the acceptance criteria of the serving tentpole: artifact
compile/load round-trips and the Hypothesis fuzz guarantee that any
truncation, header corruption, or digest mismatch surfaces as a
structured :class:`~repro.errors.PersistenceError` (never a ValueError
or numpy traceback); registry version monotonicity; the golden promise
that hot-swapping a bit-identical artifact changes no decision; refusal
of corrupt or incompatible candidates with the incumbent untouched; the
degradation ladder down to the rule-based fallback; canary rollback
within the decision budget; bounded-queue load shedding; fleet-run
determinism; and the bit-identical disabled-telemetry guarantee.
"""

import tempfile
from pathlib import Path

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.control.rl_controller import build_rl_controller
from repro.errors import CheckpointError, PersistenceError, ServeError
from repro.powertrain import PowertrainSolver
from repro.rl.discretize import StateDiscretizer
from repro.rl.persistence import _fingerprint
from repro.serve import (
    CanaryConfig,
    FleetConfig,
    FleetSimulator,
    PolicyArtifact,
    PolicyRegistry,
    PolicyServer,
    ServeConfig,
    compile_table,
    run_fleet_sharded,
)
from repro.serve.artifact import MAGIC, _aligned
from repro.telemetry import Telemetry
from repro.vehicle import default_vehicle


@pytest.fixture(scope="module")
def policy():
    """``(table, fingerprint)`` of one deterministic non-trivial policy."""
    solver = PowertrainSolver(default_vehicle())
    agent = build_rl_controller(solver, seed=11).agent
    rng = np.random.default_rng(11)
    agent.learner.qtable.values[:] = rng.normal(
        size=agent.learner.qtable.values.shape)
    return agent.learner.qtable.values.copy(), _fingerprint(agent)


def _registry(root, table, fingerprint, versions=1, bump=0.25):
    """A registry holding ``versions`` policies, each ``bump`` apart."""
    registry = PolicyRegistry(Path(root) / "registry")
    for i in range(versions):
        registry.publish_table(table + bump * i, fingerprint)
    return registry


class _ManualClock:
    """A controllable clock for deadline tests (starts at 0, no drift)."""

    def __init__(self, tick: float = 0.0):
        self.now = 0.0
        self.tick = tick

    def __call__(self) -> float:
        self.now += self.tick
        return self.now


class TestArtifact:
    def test_round_trip(self, policy, tmp_path):
        table, fingerprint = policy
        path = tmp_path / "p.rpa"
        digest = compile_table(table, fingerprint, path, version=3)
        artifact = PolicyArtifact.load(path)
        assert artifact.version == 3
        assert artifact.digest == digest
        assert artifact.fingerprint == fingerprint
        assert artifact.num_states, artifact.num_actions == table.shape
        assert np.array_equal(np.array(artifact.table), table)

    def test_compile_is_deterministic(self, policy, tmp_path):
        table, fingerprint = policy
        compile_table(table, fingerprint, tmp_path / "a.rpa", version=1)
        compile_table(table, fingerprint, tmp_path / "b.rpa", version=1)
        assert (tmp_path / "a.rpa").read_bytes() \
            == (tmp_path / "b.rpa").read_bytes()

    def test_table_is_read_only(self, policy, tmp_path):
        table, fingerprint = policy
        compile_table(table, fingerprint, tmp_path / "p.rpa")
        artifact = PolicyArtifact.load(tmp_path / "p.rpa")
        with pytest.raises(ValueError):
            artifact.table[0, 0] = 1.0

    def test_bad_tables_are_refused_at_compile(self, policy, tmp_path):
        _, fingerprint = policy
        with pytest.raises(ServeError):
            compile_table(np.zeros(5), fingerprint, tmp_path / "p.rpa")
        with pytest.raises(ServeError):
            compile_table(np.zeros((0, 4)), fingerprint, tmp_path / "p.rpa")

    def test_missing_file_is_structured(self, tmp_path):
        with pytest.raises(PersistenceError):
            PolicyArtifact.load(tmp_path / "absent.rpa")


class TestArtifactFuzz:
    """Property-style corruption resilience, mirroring the manifest fuzz:
    a damaged artifact must refuse loudly with a PersistenceError or load
    a provably intact table — never raise an unstructured error, never
    serve scrambled bytes."""

    @staticmethod
    def _compiled(tmp, table, fingerprint):
        path = Path(tmp) / "p.rpa"
        compile_table(table, fingerprint, path, version=1)
        return path

    @settings(max_examples=25, deadline=None)
    @given(cut=st.floats(0.0, 0.999))
    def test_any_truncation_is_structured(self, policy, cut):
        table, fingerprint = policy
        with tempfile.TemporaryDirectory() as tmp:
            path = self._compiled(tmp, table, fingerprint)
            blob = path.read_bytes()
            path.write_bytes(blob[:int(len(blob) * cut)])
            with pytest.raises(PersistenceError):
                PolicyArtifact.load(path)

    @settings(max_examples=25, deadline=None)
    @given(offset=st.integers(0, 1 << 16), bit=st.integers(0, 7))
    def test_header_bitflips_never_unstructured(self, policy, offset, bit):
        table, fingerprint = policy
        with tempfile.TemporaryDirectory() as tmp:
            path = self._compiled(tmp, table, fingerprint)
            blob = bytearray(path.read_bytes())
            header_len = int.from_bytes(blob[4:8], "little")
            index = offset % (8 + header_len)
            blob[index] ^= 1 << bit
            path.write_bytes(bytes(blob))
            try:
                artifact = PolicyArtifact.load(path)
            except PersistenceError:
                return  # structured refusal is one allowed outcome
            # The other: the flip hit a non-load-bearing header field
            # (e.g. a fingerprint value) — the table must still be the
            # digest-verified original.
            assert np.array_equal(np.array(artifact.table), table)

    @settings(max_examples=25, deadline=None)
    @given(fraction=st.floats(0.0, 1.0), bit=st.integers(0, 7))
    def test_table_bitflips_always_fail_the_digest(self, policy,
                                                   fraction, bit):
        table, fingerprint = policy
        with tempfile.TemporaryDirectory() as tmp:
            path = self._compiled(tmp, table, fingerprint)
            blob = bytearray(path.read_bytes())
            header_len = int.from_bytes(blob[4:8], "little")
            table_offset = _aligned(8 + header_len)
            span = len(blob) - table_offset
            index = table_offset + min(int(fraction * span), span - 1)
            blob[index] ^= 1 << bit
            path.write_bytes(bytes(blob))
            with pytest.raises(PersistenceError):
                PolicyArtifact.load(path)

    def test_recorded_digest_mismatch_is_structured(self, policy, tmp_path):
        table, fingerprint = policy
        path = self._compiled(tmp_path, table, fingerprint)
        artifact = PolicyArtifact.load(path)
        old = artifact.digest.encode("ascii")
        new = old[:-1] + (b"0" if old[-1:] != b"0" else b"1")
        path.write_bytes(path.read_bytes().replace(old, new, 1))
        with pytest.raises(PersistenceError, match="SHA-256"):
            PolicyArtifact.load(path)

    @settings(max_examples=20, deadline=None)
    @given(garbage=st.binary(max_size=256))
    def test_garbage_files_are_structured(self, garbage):
        with tempfile.TemporaryDirectory() as tmp:
            path = Path(tmp) / "p.rpa"
            path.write_bytes(MAGIC + garbage)
            with pytest.raises(PersistenceError):
                PolicyArtifact.load(path)


class TestRegistry:
    def test_versions_are_monotonic(self, policy, tmp_path):
        table, fingerprint = policy
        registry = PolicyRegistry(tmp_path / "registry")
        assert registry.latest_version() is None
        assert [registry.publish_table(table, fingerprint)
                for _ in range(3)] == [1, 2, 3]
        assert registry.versions() == [1, 2, 3]
        assert registry.load().version == 3
        assert registry.load(2).version == 2

    def test_unknown_and_empty_lookups_are_serve_errors(self, policy,
                                                        tmp_path):
        table, fingerprint = policy
        registry = PolicyRegistry(tmp_path / "registry")
        with pytest.raises(ServeError, match="empty"):
            registry.load()
        registry.publish_table(table, fingerprint)
        with pytest.raises(ServeError, match="no version 9"):
            registry.load(9)
        with pytest.raises(ServeError):
            registry.path_for(0)

    def test_renamed_artifact_cannot_impersonate(self, policy, tmp_path):
        table, fingerprint = policy
        registry = _registry(tmp_path, table, fingerprint, versions=2)
        registry.path_for(2).unlink()
        registry.path_for(1).rename(registry.path_for(2))
        with pytest.raises(PersistenceError, match="renamed"):
            registry.load(2)


class TestHotSwap:
    def test_identical_swap_is_bit_identical(self, policy, tmp_path):
        table, fingerprint = policy
        registry = _registry(tmp_path, table, fingerprint, versions=2,
                             bump=0.0)  # v2 is byte-identical to v1
        states = np.arange(table.shape[0])
        plain = PolicyServer(registry)
        plain.activate(registry.load(1))
        unswapped = plain.decide(states)
        swapped_server = PolicyServer(registry)
        swapped_server.activate(registry.load(1))
        first = swapped_server.decide(states[: len(states) // 2])
        report = swapped_server.swap(version=2)
        assert report.activated and report.probe_disagreement == 0.0
        second = swapped_server.decide(states)
        assert np.array_equal(second, unswapped)
        assert np.array_equal(first, unswapped[: len(states) // 2])

    def test_corrupt_candidate_is_refused_not_raised(self, policy, tmp_path):
        table, fingerprint = policy
        registry = _registry(tmp_path, table, fingerprint, versions=2)
        server = PolicyServer(registry)
        server.activate(registry.load(1))
        before = server.decide(np.arange(64))
        blob = bytearray(registry.path_for(2).read_bytes())
        blob[-1] ^= 0x40
        registry.path_for(2).write_bytes(bytes(blob))
        report = server.swap(version=2)
        assert not report.activated
        assert "SHA-256" in report.reason
        assert server.active_version == 1 and server.refused_swaps == 1
        assert np.array_equal(server.decide(np.arange(64)), before)

    def test_incompatible_fingerprint_is_refused(self, policy, tmp_path):
        table, fingerprint = policy
        registry = _registry(tmp_path, table, fingerprint)
        foreign = dict(fingerprint, gamma=0.123456)
        registry.publish_table(table, foreign)
        server = PolicyServer(registry)
        server.activate(registry.load(1))
        report = server.swap(version=2)
        assert not report.activated and "gamma" in report.reason
        assert server.active_version == 1

    def test_non_finite_candidate_fails_the_probe(self, policy, tmp_path):
        table, fingerprint = policy
        registry = _registry(tmp_path, table, fingerprint)
        poisoned = table.copy()
        poisoned[:, 0] = np.nan  # every probed row is non-finite
        registry.publish_table(poisoned, fingerprint)
        server = PolicyServer(registry)
        server.activate(registry.load(1))
        report = server.swap(version=2)
        assert not report.activated and "golden probe" in report.reason

    def test_staging_deadline_sheds_the_swap(self, policy, tmp_path):
        table, fingerprint = policy
        registry = _registry(tmp_path, table, fingerprint, versions=2)
        server = PolicyServer(registry, clock=_ManualClock(tick=0.05))
        server.activate(registry.load(1))
        report = server.swap(version=2, deadline_s=0.01)
        assert not report.activated and "deadline" in report.reason
        assert server.stage_sheds == 1 and server.active_version == 1

    def test_rollback_reverts_one_step(self, policy, tmp_path):
        table, fingerprint = policy
        registry = _registry(tmp_path, table, fingerprint, versions=2)
        server = PolicyServer(registry)
        server.activate(registry.load(1))
        with pytest.raises(ServeError, match="roll back"):
            server.rollback()
        assert server.swap(version=2).activated
        assert server.rollback() == 1
        assert server.active_version == 1 and server.rollbacks == 1

    def test_misuse_still_raises(self, policy, tmp_path):
        table, fingerprint = policy
        registry = _registry(tmp_path, table, fingerprint)
        server = PolicyServer(registry)
        with pytest.raises(ServeError, match="not both"):
            server.stage(version=1, path=tmp_path / "x.rpa")
        with pytest.raises(ServeError):
            PolicyServer(None).activate_latest()


class TestDegradation:
    def test_ladder_skips_corrupt_versions(self, policy, tmp_path):
        table, fingerprint = policy
        registry = _registry(tmp_path, table, fingerprint, versions=3)
        blob = bytearray(registry.path_for(3).read_bytes())
        blob[-5] ^= 0x08
        registry.path_for(3).write_bytes(bytes(blob))
        server = PolicyServer(registry)
        assert server.activate_latest() == 2
        assert server.degraded_loads == 1 and not server.degraded

    def test_empty_or_all_corrupt_registry_falls_back(self, policy,
                                                      tmp_path):
        table, fingerprint = policy
        registry = _registry(tmp_path, table, fingerprint)
        registry.path_for(1).write_bytes(b"not an artifact")
        server = PolicyServer(registry)
        assert server.activate_latest() == 0
        assert server.degraded
        actions = server.decide(np.arange(10))
        assert np.all(actions == actions[0])
        assert server.fallback_decisions == 10

    def test_fallback_action_is_the_zero_current_level(self, policy,
                                                       tmp_path):
        table, fingerprint = policy
        registry = _registry(tmp_path, table, fingerprint)
        server = PolicyServer(registry)
        server.activate_latest()
        registry.path_for(1).write_bytes(b"rot")
        assert server.activate_latest() == 0  # ladder bottoms out
        levels = np.asarray(fingerprint["current_levels"], dtype=float)
        expected = int(np.argmin(np.abs(levels)))
        assert server.decide(np.array([5]))[0] == expected

    def test_fallback_recovers_current_levels_from_a_corrupt_table(
            self, policy, tmp_path):
        # A server that never loaded anything healthy can still pick the
        # zero-current fallback: the ladder peeks the (intact) header of
        # the table-corrupt artifact for the current levels.
        table, fingerprint = policy
        registry = _registry(tmp_path, table, fingerprint)
        path = registry.path_for(1)
        blob = bytearray(path.read_bytes())
        blob[-3] ^= 0x40  # table bytes only; the header stays readable
        path.write_bytes(bytes(blob))
        server = PolicyServer(registry)
        assert server.activate_latest() == 0
        levels = np.asarray(fingerprint["current_levels"], dtype=float)
        expected = int(np.argmin(np.abs(levels)))
        assert server.decide(np.array([7]))[0] == expected
        assert expected != 0  # the hint genuinely changed the action


class TestCanary:
    def test_forced_regression_rolls_back_within_budget(self, policy,
                                                        tmp_path):
        table, fingerprint = policy
        registry = _registry(tmp_path, table, fingerprint)
        registry.publish_table(np.zeros_like(table) - 5.0, fingerprint)
        server = PolicyServer(registry)
        server.activate(registry.load(1))
        budget = 512
        server.begin_canary(version=2, canary_config=CanaryConfig(
            fraction=0.25, min_samples=32, sigmas=2.0,
            decision_budget=budget))
        rng = np.random.default_rng(0)
        verdict = None
        for _ in range(64):
            server.observe(False, rng.normal(1.0, 0.1, size=16))
            verdict = server.observe(True, np.full(16, -3.0))
            if verdict is not None:
                break
        assert verdict == "rollback"
        assert server.canary is None and server.active_version == 1
        assert server.rollbacks == 1
        assert server.last_rollback["decisions"] <= budget
        assert "sigma" in server.last_rollback["reason"]

    def test_intervention_rate_excess_rolls_back(self, policy, tmp_path):
        table, fingerprint = policy
        registry = _registry(tmp_path, table, fingerprint, versions=2)
        server = PolicyServer(registry)
        server.activate(registry.load(1))
        server.begin_canary(version=2, canary_config=CanaryConfig(
            fraction=0.25, min_samples=32, decision_budget=512,
            intervention_margin=0.05))
        rng = np.random.default_rng(1)
        verdict = None
        for _ in range(8):
            server.observe(False, rng.normal(1.0, 0.1, size=16))
            verdict = server.observe(True, rng.normal(1.0, 0.1, size=16),
                                     interventions=8)
            if verdict is not None:
                break
        assert verdict == "rollback"
        assert "intervention rate" in server.last_rollback["reason"]

    def test_healthy_candidate_is_promoted(self, policy, tmp_path):
        table, fingerprint = policy
        registry = _registry(tmp_path, table, fingerprint, versions=2,
                             bump=0.0)
        server = PolicyServer(registry)
        server.activate(registry.load(1))
        server.begin_canary(version=2, canary_config=CanaryConfig(
            fraction=0.25, min_samples=8, decision_budget=64))
        rewards = np.ones(16)
        verdict = None
        while verdict is None:
            server.observe(False, rewards)
            verdict = server.observe(True, rewards)
        assert verdict == "promote"
        assert server.active_version == 2 and server.rollbacks == 0

    def test_only_one_rollout_at_a_time(self, policy, tmp_path):
        table, fingerprint = policy
        registry = _registry(tmp_path, table, fingerprint, versions=3,
                             bump=0.0)
        server = PolicyServer(registry)
        server.activate(registry.load(1))
        server.begin_canary(version=2)
        with pytest.raises(ServeError, match="already in flight"):
            server.begin_canary(version=3)


class TestBoundedQueue:
    def test_admission_beyond_limit_is_shed(self, policy, tmp_path):
        table, fingerprint = policy
        registry = _registry(tmp_path, table, fingerprint)
        server = PolicyServer(registry, ServeConfig(queue_limit=2))
        server.activate_latest()
        states = np.arange(4)
        assert server.submit(states) and server.submit(states)
        assert not server.submit(states)
        assert server.shed_count == 1 and server.queue_depth == 2
        outcomes = server.pump()
        assert [o.shed for o in outcomes] == [False, False]
        assert server.queue_depth == 0

    def test_expired_deadlines_are_shed_at_pump(self, policy, tmp_path):
        table, fingerprint = policy
        registry = _registry(tmp_path, table, fingerprint)
        clock = _ManualClock()
        server = PolicyServer(registry, clock=clock)
        server.activate_latest()
        server.submit(np.arange(3), deadline_s=1.0, key="late")
        server.submit(np.arange(3), key="patient")
        clock.now += 5.0
        outcomes = {o.key: o for o in server.pump()}
        assert outcomes["late"].shed
        assert outcomes["late"].reason == "deadline exceeded"
        assert not outcomes["patient"].shed
        assert server.shed_count == 1


class TestFleet:
    def test_state_of_batch_matches_scalar_golden(self):
        disc = StateDiscretizer()
        rng = np.random.default_rng(5)
        p = rng.uniform(-40_000.0, 40_000.0, size=300)
        v = rng.uniform(0.0, 35.0, size=300)
        soc = rng.uniform(0.0, 1.0, size=300)
        batch = disc.state_of_batch(p, v, soc)
        assert batch.tolist() == [disc.state_of(p[i], v[i], soc[i])
                                  for i in range(300)]

    def test_runs_are_deterministic(self, policy, tmp_path):
        table, fingerprint = policy
        registry = _registry(tmp_path, table, fingerprint)
        results = []
        for _ in range(2):
            server = PolicyServer(registry)
            server.activate_latest()
            config = FleetConfig(vehicles=48, steps=10, seed=3)
            results.append(FleetSimulator(server, config,
                                          record_trace=True).run())
        assert np.array_equal(results[0].actions, results[1].actions)
        assert np.array_equal(results[0].final_soc, results[1].final_soc)
        assert results[0].decisions == results[1].decisions == 48 * 10

    def test_queue_pressure_degrades_to_limp_not_crash(self, policy,
                                                       tmp_path):
        table, fingerprint = policy
        registry = _registry(tmp_path, table, fingerprint)
        server = PolicyServer(registry, ServeConfig(queue_limit=1))
        server.activate_latest()
        config = FleetConfig(vehicles=64, steps=5, request_batch=8, seed=2)
        result = FleetSimulator(server, config).run()
        assert result.shed_requests > 0
        assert result.limp_decisions > 0
        assert result.decisions + result.limp_decisions == 64 * 5

    def test_fleet_canary_regression_rolls_back(self, policy, tmp_path):
        table, fingerprint = policy
        registry = _registry(tmp_path, table, fingerprint)
        registry.publish_table(np.zeros_like(table) - 5.0, fingerprint)
        server = PolicyServer(registry)
        server.activate(registry.load(1))
        budget = 2000
        server.begin_canary(version=2, canary_config=CanaryConfig(
            fraction=0.3, min_samples=64, sigmas=2.0,
            decision_budget=budget))
        result = FleetSimulator(server, FleetConfig(vehicles=256, steps=30,
                                                    seed=1)).run()
        assert result.canary_verdict == "rollback"
        assert result.rollback is not None
        assert result.rollback["decisions"] <= budget
        assert server.active_version == 1

    def test_fleet_requires_an_activated_policy(self, tmp_path):
        server = PolicyServer(PolicyRegistry(tmp_path / "registry"))
        with pytest.raises(ServeError, match="activate a"):
            FleetSimulator(server)

    def test_sharded_run_aggregates(self, policy, tmp_path):
        table, fingerprint = policy
        registry = _registry(tmp_path, table, fingerprint)
        config = FleetConfig(vehicles=40, steps=5, seed=4)
        aggregate = run_fleet_sharded(registry.root, config, shards=2)
        assert aggregate["shards"] == 2 and aggregate["failures"] == 0
        assert aggregate["vehicles"] == 40
        assert aggregate["decisions"] == 40 * 5

    def test_shard_count_is_bit_invariant(self, policy, tmp_path):
        # Regression test: per-vehicle draws and noise streams are keyed
        # by GLOBAL vehicle id, and rewards are reduced with fsum, so
        # splitting the same population across any shard count yields
        # bit-identical aggregates (absent queue shedding).
        table, fingerprint = policy
        registry = _registry(tmp_path, table, fingerprint)
        config = FleetConfig(vehicles=48, steps=12, seed=6)
        one = run_fleet_sharded(registry.root, config, shards=1)
        four = run_fleet_sharded(registry.root, config, shards=4)
        assert four["failures"] == 0
        for key in ("decisions", "interventions", "limp_decisions",
                    "shed_requests"):
            assert one[key] == four[key], key
        assert one["mean_reward"] == four["mean_reward"]

    def test_streaming_experience_changes_no_decision(self, policy,
                                                      tmp_path):
        from repro.learn import ExperienceStream, read_journal

        table, fingerprint = policy
        registry = _registry(tmp_path, table, fingerprint)
        config = FleetConfig(vehicles=32, steps=10, seed=7)

        def _run(experience=None):
            server = PolicyServer(registry)
            server.activate_latest()
            return FleetSimulator(server, config,
                                  experience=experience).run()

        silent = _run()
        stream = ExperienceStream(tmp_path / "journals")
        streamed = _run(experience=stream)
        stream.close()
        # Streaming is decision-read-only: the fleet behaves identically.
        assert streamed.decisions == silent.decisions
        assert streamed.mean_reward == silent.mean_reward
        assert streamed.interventions == silent.interventions
        assert streamed.experience_records > 0
        assert streamed.stream_errors == 0
        piece = read_journal(stream.path)
        assert len(piece.records) == streamed.experience_records
        assert all(rec.policy_version == 1 for rec in piece.records)

    def test_fully_faulty_fleet_streams_nothing(self, policy, tmp_path):
        from repro.learn import ExperienceStream

        table, fingerprint = policy
        registry = _registry(tmp_path, table, fingerprint)
        server = PolicyServer(registry)
        server.activate_latest()
        stream = ExperienceStream(tmp_path / "journals")
        config = FleetConfig(vehicles=16, steps=8, seed=7,
                             fault_fraction=1.0)
        result = FleetSimulator(server, config, experience=stream).run()
        stream.close()
        assert result.decisions > 0  # degraded vehicles are still served
        assert result.experience_records == 0

    def test_stream_failure_freezes_streaming_not_serving(self, policy,
                                                          tmp_path):
        from repro.errors import ExperienceError
        from repro.learn import ExperienceStream

        class _BrokenStream(ExperienceStream):
            def flush(self):
                raise ExperienceError("journal disk on fire")

        table, fingerprint = policy
        registry = _registry(tmp_path, table, fingerprint)
        server = PolicyServer(registry)
        server.activate_latest()
        config = FleetConfig(vehicles=24, steps=10, seed=7)
        broken = _BrokenStream(tmp_path / "journals")
        result = FleetSimulator(server, config, experience=broken).run()
        broken.close()
        # One structured failure froze streaming; serving never noticed.
        assert result.stream_errors == 1
        assert result.experience_records == 0
        assert result.decisions + result.limp_decisions == 24 * 10
        ref_server = PolicyServer(registry)
        ref_server.activate_latest()
        ref = FleetSimulator(ref_server, config).run()
        assert result.mean_reward == ref.mean_reward


class TestServeTelemetryGolden:
    def test_disabled_telemetry_is_bit_identical(self, policy, tmp_path):
        table, fingerprint = policy
        registry = _registry(tmp_path, table, fingerprint, versions=2,
                             bump=0.0)
        traces = []
        with Telemetry(tmp_path / "t.jsonl") as telemetry:
            for instrument in (telemetry, None):
                server = PolicyServer(registry, telemetry=instrument)
                server.activate(registry.load(1))
                server.swap(version=2)
                config = FleetConfig(vehicles=32, steps=8, seed=6)
                traces.append(FleetSimulator(server, config,
                                             record_trace=True).run())
        assert np.array_equal(traces[0].actions, traces[1].actions)
        assert np.array_equal(traces[0].final_soc, traces[1].final_soc)

    def test_serve_metrics_and_events_are_emitted(self, policy, tmp_path):
        table, fingerprint = policy
        registry = _registry(tmp_path, table, fingerprint, versions=2,
                             bump=0.0)
        with Telemetry(tmp_path / "t.jsonl") as telemetry:
            server = PolicyServer(registry, ServeConfig(queue_limit=1),
                                  telemetry=telemetry)
            server.activate(registry.load(1))
            assert server.swap(version=2).activated
            server.rollback()
            server.submit(np.arange(3))
            server.submit(np.arange(3))
            server.pump()
            server.decide(np.arange(5))
            metrics = telemetry.metrics
            assert metrics.counter("serve.swap").value == 2
            assert metrics.counter("serve.rollback").value == 1
            assert metrics.counter("serve.shed").value == 1
            assert metrics.gauge("serve.active_version").value == 1.0
