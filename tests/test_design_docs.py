"""Documentation-consistency tests.

A repository of this shape rots first in its documentation: DESIGN.md
promises modules and benches, README promises examples.  These tests pin
the promises to the filesystem.
"""

import re
from pathlib import Path

import pytest

ROOT = Path(__file__).resolve().parent.parent


@pytest.fixture(scope="module")
def design_text():
    return (ROOT / "DESIGN.md").read_text()


@pytest.fixture(scope="module")
def readme_text():
    return (ROOT / "README.md").read_text()


class TestDesignDocument:
    def test_exists_with_required_sections(self, design_text):
        for heading in ("Substitutions", "System inventory",
                        "Experiment index"):
            assert heading in design_text

    def test_paper_check_recorded(self, design_text):
        assert "Paper check" in design_text

    def test_referenced_benches_exist(self, design_text):
        for name in re.findall(r"benchmarks/(bench_\w+\.py)", design_text):
            assert (ROOT / "benchmarks" / name).exists(), name

    def test_every_bench_is_indexed(self, design_text):
        for bench in (ROOT / "benchmarks").glob("bench_*.py"):
            assert bench.name in design_text, \
                f"{bench.name} missing from DESIGN.md"


class TestReadme:
    def test_cites_the_paper(self, readme_text):
        assert "DAC 2015" in readme_text
        assert "Joint Automatic Control" in readme_text

    def test_listed_examples_exist(self, readme_text):
        for name in re.findall(r"`(\w+\.py)` \|", readme_text):
            directory = "benchmarks" if name.startswith("bench_") else "examples"
            assert (ROOT / directory / name).exists(), name

    def test_every_example_is_listed(self, readme_text):
        for example in (ROOT / "examples").glob("*.py"):
            assert example.name in readme_text, \
                f"{example.name} missing from README"

    def test_companion_documents_linked(self, readme_text):
        for doc in ("DESIGN.md", "EXPERIMENTS.md", "docs/PHYSICS.md"):
            assert doc in readme_text
            assert (ROOT / doc).exists()


class TestExperimentsDocument:
    def test_covers_every_paper_artefact(self):
        text = (ROOT / "EXPERIMENTS.md").read_text()
        for artefact in ("Table 1", "Figure 2", "Table 2", "Figure 3"):
            assert artefact in text

    def test_paper_numbers_recorded(self):
        text = (ROOT / "EXPERIMENTS.md").read_text()
        # The paper's Table 2 values must be quoted for comparison.
        for value in ("-275.76", "-754.85", "-284.14", "-741.12"):
            assert value in text


class TestDocstringCoverage:
    def test_every_module_has_a_docstring(self):
        import ast
        missing = []
        for path in (ROOT / "src" / "repro").rglob("*.py"):
            tree = ast.parse(path.read_text())
            if not (tree.body and isinstance(tree.body[0], ast.Expr)
                    and isinstance(tree.body[0].value, ast.Constant)):
                missing.append(str(path))
        assert not missing, f"modules without docstrings: {missing}"

    def test_public_classes_and_functions_documented(self):
        import ast
        undocumented = []
        for path in (ROOT / "src" / "repro").rglob("*.py"):
            tree = ast.parse(path.read_text())
            for node in ast.walk(tree):
                if isinstance(node, (ast.ClassDef, ast.FunctionDef)):
                    if node.name.startswith("_"):
                        continue
                    if not ast.get_docstring(node):
                        undocumented.append(f"{path.name}:{node.name}")
        assert not undocumented, \
            f"undocumented public items: {undocumented}"
