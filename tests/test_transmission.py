"""Tests of the drivetrain mechanics (paper Eq. 8-10)."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.vehicle.params import TransmissionParams
from repro.vehicle.transmission import Transmission


@pytest.fixture
def trans():
    return Transmission(TransmissionParams())


class TestSpeedRelations:
    def test_engine_speed_eq8(self, trans):
        # omega_ICE = omega_wh * R(k).
        assert float(trans.engine_speed(20.0, 0)) == pytest.approx(
            20.0 * trans.params.gear_ratios[0])

    def test_motor_speed_eq8(self, trans):
        # omega_EM = omega_ICE * rho_reg.
        eng = float(trans.engine_speed(20.0, 2))
        assert float(trans.motor_speed(20.0, 2)) == pytest.approx(
            eng * trans.params.reduction_ratio)

    def test_higher_gear_lower_engine_speed(self, trans):
        speeds = [float(trans.engine_speed(20.0, k))
                  for k in range(trans.num_gears)]
        assert speeds == sorted(speeds, reverse=True)

    def test_ratio_rejects_bad_gear(self, trans):
        with pytest.raises(IndexError):
            trans.ratio(trans.num_gears)
        with pytest.raises(IndexError):
            trans.ratio(-1)


class TestTorqueRelations:
    def test_motoring_torque_loses_reduction_efficiency(self, trans):
        p = trans.params
        shaft = float(trans.motor_torque_at_shaft(10.0))
        assert shaft == pytest.approx(
            p.reduction_ratio * 10.0 * p.reduction_efficiency)

    def test_generating_torque_costs_more_at_shaft(self, trans):
        p = trans.params
        shaft = float(trans.motor_torque_at_shaft(-10.0))
        assert shaft == pytest.approx(
            p.reduction_ratio * -10.0 / p.reduction_efficiency)

    def test_wheel_torque_positive_flow(self, trans):
        p = trans.params
        t_wh = float(trans.wheel_torque(50.0, 10.0, 1))
        shaft = 50.0 + p.reduction_ratio * 10.0 * p.reduction_efficiency
        assert t_wh == pytest.approx(
            p.gear_ratios[1] * shaft * p.gearbox_efficiency)

    def test_wheel_torque_negative_flow_inverts_efficiency(self, trans):
        p = trans.params
        t_wh = float(trans.wheel_torque(0.0, -20.0, 1))
        shaft = p.reduction_ratio * -20.0 / p.reduction_efficiency
        assert t_wh == pytest.approx(
            p.gear_ratios[1] * shaft / p.gearbox_efficiency)

    @given(st.floats(min_value=-200.0, max_value=200.0),
           st.integers(min_value=0, max_value=4))
    def test_required_shaft_torque_inverts_wheel_torque(self, shaft, gear):
        trans = Transmission(TransmissionParams())
        # Build a wheel torque from a known shaft torque with T_ICE = shaft,
        # T_EM = 0, then invert: the round trip must recover shaft.
        t_wh = float(trans.wheel_torque(shaft, 0.0, gear))
        back = float(trans.required_shaft_torque(t_wh, gear))
        assert back == pytest.approx(shaft, rel=1e-9, abs=1e-9)

    @given(st.floats(min_value=-100.0, max_value=100.0))
    def test_motor_shaft_torque_roundtrip(self, torque):
        trans = Transmission(TransmissionParams())
        shaft = float(trans.motor_torque_at_shaft(torque))
        back = float(trans.motor_torque_from_shaft(shaft))
        assert back == pytest.approx(torque, rel=1e-9, abs=1e-9)

    def test_transmission_dissipates_energy_both_ways(self, trans):
        # Eq. 9-10 sign conventions must always dissipate, never create,
        # energy: |T_wh| < ideal forward, |shaft| > ideal backward.
        p = trans.params
        ideal = p.gear_ratios[0] * (30.0 + p.reduction_ratio * 10.0)
        actual = float(trans.wheel_torque(30.0, 10.0, 0))
        assert actual < ideal


class TestGearFeasibility:
    def test_all_gears_at_moderate_speed(self, trans):
        # 40 rad/s wheel speed (~11.5 m/s): some gears must be feasible.
        gears = trans.feasible_gears(40.0, 104.7, 471.2, 1000.0)
        assert len(gears) >= 1

    def test_no_engine_gear_at_crawl(self, trans):
        # At 5 rad/s wheel speed the engine cannot stay above idle.
        gears = trans.feasible_gears(5.0, 104.7, 471.2, 1000.0,
                                     engine_needed=True)
        assert len(gears) == 0

    def test_ev_gears_at_crawl(self, trans):
        gears = trans.feasible_gears(5.0, 104.7, 471.2, 1000.0,
                                     engine_needed=False)
        assert len(gears) == trans.num_gears
