"""Property-based tests of the joint agent's acting loop.

Hypothesis drives the agent through random demand sequences and checks the
invariants the rest of the system relies on: executed steps are always
physical, state ids valid, pending-transition bookkeeping consistent, and
the executed current always matches what the battery will be stepped with.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.powertrain import PowertrainSolver
from repro.prediction import ExponentialPredictor
from repro.rl.agent import JointControlAgent
from repro.rl.exploration import EpsilonGreedy
from repro.vehicle import default_vehicle

_SOLVER = PowertrainSolver(default_vehicle())


def make_agent(seed=0):
    return JointControlAgent(_SOLVER, predictor=ExponentialPredictor(),
                             exploration=EpsilonGreedy(seed=seed), seed=seed)


demand_step = st.tuples(
    st.floats(min_value=0.0, max_value=28.0),    # speed
    st.floats(min_value=-2.0, max_value=1.5),    # acceleration
)


class TestActInvariants:
    @settings(max_examples=25, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(st.lists(demand_step, min_size=3, max_size=12),
           st.floats(min_value=0.44, max_value=0.76))
    def test_episode_invariants(self, steps, soc0):
        agent = make_agent()
        agent.begin_episode()
        battery = _SOLVER.battery
        state = battery.initial_state(soc0)
        for v, a in steps:
            soc = battery.soc(state)
            step = agent.act(v, a, soc, dt=1.0, learn=True)
            # Physicality.
            assert step.fuel_rate >= 0.0
            assert abs(step.current) <= battery.params.max_current + 1e-6
            assert 0.0 <= step.soc_next <= 1.0
            assert 0 <= step.gear < _SOLVER.transmission.num_gears
            # State id valid.
            assert 0 <= step.state < agent.discretizer.num_states
            # Learning rewards never exceed the pure-utility bound.
            assert step.reward <= 1.0 + battery.params.max_current
            # Stepping the battery with the executed current reproduces
            # the solver's claimed next SoC.
            state = battery.step(state, step.current, 1.0)
            assert battery.soc(state) == pytest.approx(step.soc_next,
                                                       abs=1e-9)
        agent.finish_episode()

    @settings(max_examples=15, deadline=None)
    @given(st.lists(demand_step, min_size=2, max_size=8))
    def test_greedy_mode_is_pure(self, steps):
        """Evaluation must not mutate the Q-table or the predictor state
        across episodes."""
        agent = make_agent(seed=3)
        agent.begin_episode()
        before = agent.learner.qtable.values.copy()
        for v, a in steps:
            agent.act(v, a, 0.6, dt=1.0, learn=False, greedy=True)
        agent.finish_episode(learn=False)
        assert np.array_equal(agent.learner.qtable.values, before)

    @settings(max_examples=15, deadline=None)
    @given(st.lists(demand_step, min_size=2, max_size=8),
           st.integers(min_value=0, max_value=10_000))
    def test_determinism_given_seed(self, steps, seed):
        def run():
            agent = make_agent(seed=seed)
            agent.begin_episode()
            out = []
            for v, a in steps:
                step = agent.act(v, a, 0.6, dt=1.0, learn=True)
                out.append((step.rl_action, step.gear,
                            round(step.fuel_rate, 9)))
            return out

        assert run() == run()
