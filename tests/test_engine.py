"""Tests of the quasi-static ICE model (paper Eq. 1-2)."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.vehicle.engine import Engine
from repro.vehicle.params import EngineParams


@pytest.fixture
def engine():
    return Engine(EngineParams())


def speeds_in_band():
    p = EngineParams()
    return st.floats(min_value=p.min_speed, max_value=p.max_speed)


class TestTorqueEnvelope:
    def test_zero_outside_speed_band(self, engine):
        p = engine.params
        assert engine.max_torque(p.min_speed - 1.0) == 0.0
        assert engine.max_torque(p.max_speed + 1.0) == 0.0

    def test_peak_at_peak_torque_speed(self, engine):
        p = engine.params
        t_peak = float(engine.max_torque(p.peak_torque_speed))
        assert t_peak == pytest.approx(p.max_torque, rel=1e-6)

    def test_power_limit_respected(self, engine):
        p = engine.params
        speeds = np.linspace(p.min_speed, p.max_speed, 50)
        power = np.asarray(engine.max_torque(speeds)) * speeds
        assert np.all(power <= p.max_power * 1.001)

    def test_concave_shape(self, engine):
        p = engine.params
        t_lo = float(engine.max_torque(p.min_speed))
        t_peak = float(engine.max_torque(p.peak_torque_speed))
        t_hi = float(engine.max_torque(p.max_speed))
        assert t_peak > t_lo
        assert t_peak > t_hi


class TestFeasibility:
    def test_engine_off_point_feasible(self, engine):
        assert bool(engine.is_feasible(0.0, 0.0))

    def test_negative_torque_infeasible(self, engine):
        assert not bool(engine.is_feasible(-10.0, 200.0))

    def test_above_envelope_infeasible(self, engine):
        p = engine.params
        t_max = float(engine.max_torque(200.0))
        assert not bool(engine.is_feasible(t_max + 1.0, 200.0))

    def test_interior_point_feasible(self, engine):
        assert bool(engine.is_feasible(40.0, 200.0))

    def test_below_idle_speed_infeasible(self, engine):
        p = engine.params
        assert not bool(engine.is_feasible(20.0, p.min_speed / 2.0))


class TestEfficiency:
    def test_peak_at_sweet_spot(self, engine):
        p = engine.params
        t_opt = p.optimal_torque_fraction * float(
            engine.max_torque(p.optimal_speed))
        eta = float(engine.efficiency(t_opt, p.optimal_speed))
        assert eta == pytest.approx(p.peak_efficiency, rel=1e-6)

    def test_bounded_by_floor_and_peak(self, engine):
        p = engine.params
        speeds = np.linspace(p.min_speed, p.max_speed, 30)
        for s in speeds:
            torques = np.linspace(0.0, float(engine.max_torque(s)), 20)
            eta = np.asarray(engine.efficiency(torques, s))
            assert np.all(eta >= p.efficiency_floor - 1e-12)
            assert np.all(eta <= p.peak_efficiency + 1e-12)

    def test_degrades_away_from_sweet_spot(self, engine):
        p = engine.params
        t_opt = p.optimal_torque_fraction * float(
            engine.max_torque(p.optimal_speed))
        eta_opt = float(engine.efficiency(t_opt, p.optimal_speed))
        eta_light = float(engine.efficiency(t_opt * 0.15, p.optimal_speed))
        eta_fast = float(engine.efficiency(t_opt, p.max_speed))
        assert eta_light < eta_opt
        assert eta_fast < eta_opt


class TestFuelRate:
    def test_zero_when_off(self, engine):
        assert float(engine.fuel_rate(0.0, 0.0)) == 0.0

    def test_positive_at_idle_speed(self, engine):
        # A spinning unloaded engine still burns fuel (idle term).
        assert float(engine.fuel_rate(0.0, engine.params.min_speed)) > 0.0

    def test_eq1_consistency(self, engine):
        # Eq. 1: eta = T omega / (mdot Df) must hold up to the idle term.
        p = engine.params
        torque, speed = 60.0, 250.0
        mdot = float(engine.fuel_rate(torque, speed))
        idle = p.idle_fuel_rate * (speed / p.max_speed + 0.5)
        eta = float(engine.efficiency(torque, speed))
        assert (mdot - idle) == pytest.approx(
            torque * speed / (eta * p.fuel_energy_density), rel=1e-9)

    @given(speeds_in_band(), st.floats(min_value=0.0, max_value=1.0))
    def test_monotone_in_torque(self, speed, frac):
        engine = Engine(EngineParams())
        t_max = float(engine.max_torque(speed))
        t = frac * t_max
        r_low = float(engine.fuel_rate(t, speed))
        r_high = float(engine.fuel_rate(min(t + 5.0, t_max), speed))
        assert r_high >= r_low - 1e-12

    @given(speeds_in_band())
    def test_nonnegative(self, speed):
        engine = Engine(EngineParams())
        assert float(engine.fuel_rate(30.0, speed)) >= 0.0

    def test_plausible_cruise_fuel_rate(self, engine):
        # ~10 kW brake power near the sweet spot should burn around
        # 0.7-1.0 g/s (i.e. 35-40 MPG territory for a compact car).
        rate = float(engine.fuel_rate(40.0, 250.0))
        assert 0.4 < rate < 1.5


class TestBestOperatingTorque:
    def test_within_envelope(self, engine):
        p = engine.params
        speeds = np.linspace(p.min_speed, p.max_speed, 20)
        best = np.asarray(engine.best_operating_torque(speeds))
        assert np.all(best <= np.asarray(engine.max_torque(speeds)) + 1e-9)
        assert np.all(best >= 0.0)

    def test_near_efficiency_peak(self, engine):
        p = engine.params
        best = float(engine.best_operating_torque(p.optimal_speed))
        eta_best = float(engine.efficiency(best, p.optimal_speed))
        assert eta_best >= 0.95 * p.peak_efficiency
