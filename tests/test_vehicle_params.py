"""Validation tests for the parameter dataclasses in :mod:`repro.vehicle.params`."""

import pytest

from repro.vehicle.params import (
    AuxiliaryParams,
    BatteryParams,
    BodyParams,
    EngineParams,
    MotorParams,
    TransmissionParams,
    VehicleParams,
    default_vehicle,
)


class TestBodyParams:
    def test_defaults_valid(self):
        BodyParams()

    def test_rejects_nonpositive_mass(self):
        with pytest.raises(ValueError):
            BodyParams(mass=0.0)

    def test_rejects_negative_drag(self):
        with pytest.raises(ValueError):
            BodyParams(drag_coefficient=-0.1)

    def test_rejects_zero_wheel_radius(self):
        with pytest.raises(ValueError):
            BodyParams(wheel_radius=0.0)

    def test_rejects_rolling_resistance_above_one(self):
        with pytest.raises(ValueError):
            BodyParams(rolling_resistance=1.5)


class TestEngineParams:
    def test_defaults_valid(self):
        EngineParams()

    def test_rejects_reversed_speed_band(self):
        with pytest.raises(ValueError):
            EngineParams(min_speed=500.0, max_speed=400.0)

    def test_rejects_peak_torque_speed_outside_band(self):
        with pytest.raises(ValueError):
            EngineParams(peak_torque_speed=50.0)

    def test_rejects_efficiency_above_one(self):
        with pytest.raises(ValueError):
            EngineParams(peak_efficiency=1.2)

    def test_rejects_floor_above_peak(self):
        with pytest.raises(ValueError):
            EngineParams(peak_efficiency=0.3, efficiency_floor=0.4)

    def test_rejects_negative_idle_fuel(self):
        with pytest.raises(ValueError):
            EngineParams(idle_fuel_rate=-0.1)


class TestMotorParams:
    def test_defaults_valid(self):
        MotorParams()

    def test_default_speed_covers_geared_engine_max(self):
        # The EM is permanently geared to the crankshaft; its envelope must
        # cover rho_reg * engine max speed or high gears become unusable.
        motor = MotorParams()
        engine = EngineParams()
        trans = TransmissionParams()
        assert motor.max_speed >= trans.reduction_ratio * engine.max_speed

    def test_rejects_base_speed_above_max(self):
        with pytest.raises(ValueError):
            MotorParams(base_speed=2000.0, max_speed=1000.0)

    def test_rejects_nonpositive_power(self):
        with pytest.raises(ValueError):
            MotorParams(max_power=0.0)


class TestBatteryParams:
    def test_defaults_valid(self):
        BatteryParams()

    def test_default_window_matches_paper(self):
        # Section 4.3.1: q_min/q_max are 40% and 80% of nominal capacity.
        p = BatteryParams()
        assert p.soc_min == pytest.approx(0.40)
        assert p.soc_max == pytest.approx(0.80)

    def test_rejects_reversed_window(self):
        with pytest.raises(ValueError):
            BatteryParams(soc_min=0.8, soc_max=0.4)

    def test_rejects_decreasing_ocv(self):
        with pytest.raises(ValueError):
            BatteryParams(voltage_at_empty=300.0, voltage_at_full=250.0)

    def test_rejects_nonpositive_resistance(self):
        with pytest.raises(ValueError):
            BatteryParams(discharge_resistance=0.0)

    def test_rejects_coulombic_efficiency_above_one(self):
        with pytest.raises(ValueError):
            BatteryParams(coulombic_efficiency=1.1)


class TestTransmissionParams:
    def test_defaults_valid(self):
        p = TransmissionParams()
        assert p.num_gears == 5

    def test_rejects_single_gear(self):
        with pytest.raises(ValueError):
            TransmissionParams(gear_ratios=(3.0,))

    def test_rejects_unsorted_ratios(self):
        with pytest.raises(ValueError):
            TransmissionParams(gear_ratios=(3.0, 5.0, 2.0))

    def test_rejects_negative_ratio(self):
        with pytest.raises(ValueError):
            TransmissionParams(gear_ratios=(5.0, -1.0))

    def test_rejects_efficiency_above_one(self):
        with pytest.raises(ValueError):
            TransmissionParams(gearbox_efficiency=1.2)


class TestAuxiliaryParams:
    def test_defaults_valid(self):
        p = AuxiliaryParams()
        assert p.preferred_power == pytest.approx(600.0)

    def test_rejects_out_of_order_levels(self):
        with pytest.raises(ValueError):
            AuxiliaryParams(min_power=700.0, preferred_power=600.0)

    def test_rejects_nonpositive_width(self):
        with pytest.raises(ValueError):
            AuxiliaryParams(utility_width=0.0)


class TestDefaultVehicle:
    def test_returns_complete_set(self):
        v = default_vehicle()
        assert isinstance(v, VehicleParams)
        assert v.body.mass > 0
        assert v.engine.max_power > v.motor.max_power * 0.5

    def test_instances_independent(self):
        assert default_vehicle() == default_vehicle()
