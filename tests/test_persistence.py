"""Tests of policy save/load in :mod:`repro.rl.persistence`."""

import numpy as np
import pytest

from repro.control.rl_controller import build_rl_controller
from repro.cycles import CycleSpec, synthesize
from repro.powertrain import PowertrainSolver
from repro.errors import PersistenceError
from repro.rl.persistence import load_policy, save_policy
from repro.sim import Simulator, evaluate, train
from repro.vehicle import default_vehicle


@pytest.fixture(scope="module")
def cycle():
    return synthesize(CycleSpec("p", duration=120, mean_speed_kmh=25.0,
                                max_speed_kmh=50.0, stop_count=2, seed=41))


@pytest.fixture(scope="module")
def trained_agent(cycle):
    solver = PowertrainSolver(default_vehicle())
    controller = build_rl_controller(solver, seed=2)
    train(Simulator(solver), controller, cycle, episodes=5,
          evaluate_after=False)
    return controller.agent


class TestRoundTrip:
    def test_qtable_restored_exactly(self, trained_agent, tmp_path):
        save_policy(trained_agent, tmp_path / "policy")
        solver = PowertrainSolver(default_vehicle())
        fresh = build_rl_controller(solver, seed=99).agent
        load_policy(fresh, tmp_path / "policy")
        assert np.array_equal(fresh.learner.qtable.values,
                              trained_agent.learner.qtable.values)

    def test_loaded_policy_reproduces_behaviour(self, trained_agent, cycle,
                                                tmp_path):
        save_policy(trained_agent, tmp_path / "policy")
        solver = PowertrainSolver(default_vehicle())
        fresh_ctrl = build_rl_controller(solver, seed=99)
        load_policy(fresh_ctrl.agent, tmp_path / "policy")

        sim = Simulator(solver)
        a = evaluate(sim, fresh_ctrl, cycle)

        solver2 = PowertrainSolver(default_vehicle())
        sim2 = Simulator(solver2)
        from repro.control.rl_controller import RLController
        b = evaluate(sim2, RLController(trained_agent), cycle)
        assert a.total_fuel == pytest.approx(b.total_fuel)
        assert np.array_equal(a.gear, b.gear)

    def test_two_files_written(self, trained_agent, tmp_path):
        save_policy(trained_agent, tmp_path / "pol")
        assert (tmp_path / "pol.npz").exists()
        assert (tmp_path / "pol.json").exists()


class TestCompatibilityGuard:
    def test_rejects_different_variant(self, trained_agent, tmp_path):
        save_policy(trained_agent, tmp_path / "policy")
        solver = PowertrainSolver(default_vehicle())
        other = build_rl_controller(solver, variant="baseline13").agent
        with pytest.raises(ValueError, match="incompatible"):
            load_policy(other, tmp_path / "policy")

    def test_rejects_different_action_levels(self, trained_agent, tmp_path):
        from repro.rl.agent import ActionSpaceConfig
        save_policy(trained_agent, tmp_path / "policy")
        solver = PowertrainSolver(default_vehicle())
        other = build_rl_controller(
            solver,
            action_config=ActionSpaceConfig(
                current_levels=(-50.0, 0.0, 50.0))).agent
        with pytest.raises(ValueError, match="incompatible"):
            load_policy(other, tmp_path / "policy")

    def test_missing_file_raises(self, trained_agent, tmp_path):
        with pytest.raises(FileNotFoundError):
            load_policy(trained_agent, tmp_path / "nothing")


class TestIntegrity:
    """On-disk corruption must surface as structured PersistenceError."""

    def test_bit_flip_is_detected_with_digests(self, trained_agent, tmp_path):
        save_policy(trained_agent, tmp_path / "policy")
        npz = tmp_path / "policy.npz"
        blob = bytearray(npz.read_bytes())
        blob[len(blob) // 2] ^= 0xFF
        npz.write_bytes(bytes(blob))
        fresh = build_rl_controller(PowertrainSolver(default_vehicle()),
                                    seed=99).agent
        with pytest.raises(PersistenceError, match="SHA-256"):
            load_policy(fresh, tmp_path / "policy")

    def test_truncated_archive_without_digest_is_structured(
            self, trained_agent, tmp_path):
        import json
        save_policy(trained_agent, tmp_path / "policy")
        sidecar = tmp_path / "policy.json"
        meta = json.loads(sidecar.read_text())
        del meta["npz_sha256"]  # a pre-integrity sidecar
        sidecar.write_text(json.dumps(meta))
        npz = tmp_path / "policy.npz"
        npz.write_bytes(npz.read_bytes()[:40])
        fresh = build_rl_controller(PowertrainSolver(default_vehicle()),
                                    seed=99).agent
        with pytest.raises(PersistenceError, match="unreadable"):
            load_policy(fresh, tmp_path / "policy")

    def test_corrupt_sidecar_is_structured(self, trained_agent, tmp_path):
        save_policy(trained_agent, tmp_path / "policy")
        (tmp_path / "policy.json").write_text('{"format_version": 1, trunc')
        with pytest.raises(PersistenceError, match="JSON"):
            load_policy(trained_agent, tmp_path / "policy")

    def test_sidecar_without_digest_still_loads(self, trained_agent,
                                                tmp_path):
        import json
        save_policy(trained_agent, tmp_path / "policy")
        sidecar = tmp_path / "policy.json"
        meta = json.loads(sidecar.read_text())
        del meta["npz_sha256"]
        sidecar.write_text(json.dumps(meta))
        fresh = build_rl_controller(PowertrainSolver(default_vehicle()),
                                    seed=99).agent
        # Back-compat: no raise — but never silent: the unverified load
        # warns, naming the file.
        with pytest.warns(RuntimeWarning, match=r"policy\.npz.*no SHA-256"):
            load_policy(fresh, tmp_path / "policy")
        assert np.array_equal(fresh.learner.qtable.values,
                              trained_agent.learner.qtable.values)

    def test_checkpoint_bit_flip_is_detected(self, trained_agent, tmp_path):
        from repro.rl.persistence import load_checkpoint, save_checkpoint
        save_checkpoint(trained_agent, tmp_path / "ckpt", episode=3)
        npz = tmp_path / "ckpt.npz"
        blob = bytearray(npz.read_bytes())
        blob[len(blob) // 2] ^= 0xFF
        npz.write_bytes(bytes(blob))
        with pytest.raises(PersistenceError, match="SHA-256"):
            load_checkpoint(trained_agent, tmp_path / "ckpt")
